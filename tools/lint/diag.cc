#include "diag.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace ealint {

namespace {

/**
 * Extract the string value of @p key from the JSON object text in
 * @p obj. Understands exactly the documents this tool emits (keys and
 * values are plain escaped strings, no nested objects in findings).
 */
std::string
extractString(const std::string &obj, const std::string &key)
{
    std::string needle = "\"" + key + "\":\"";
    size_t pos = obj.find(needle);
    if (pos == std::string::npos)
        return "";
    pos += needle.size();
    std::string out;
    while (pos < obj.size() && obj[pos] != '"') {
        char c = obj[pos++];
        if (c == '\\' && pos < obj.size()) {
            char esc = obj[pos++];
            switch (esc) {
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              default: out += esc; break;
            }
        } else {
            out += c;
        }
    }
    return out;
}

} // namespace

void
Diagnostics::report(const SourceFile &sf, int line,
                    const std::string &rule, const std::string &message)
{
    if (sf.suppressed(line, rule))
        return;
    reportRaw(sf.rel, line, rule, message);
}

void
Diagnostics::reportRaw(const std::string &file, int line,
                       const std::string &rule,
                       const std::string &message)
{
    const RuleInfo *info = findRule(rule);
    Finding f;
    f.file = file;
    f.line = line;
    f.rule = rule;
    f.severity = info ? info->severity : Severity::Error;
    f.message = message;
    findings_.push_back(std::move(f));
}

bool
Diagnostics::loadBaseline(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();

    // Walk the top-level findings array object by object. The writer
    // emits one finding per line, but parse by braces so a reformatted
    // baseline still loads.
    size_t arr = text.find("\"findings\":[");
    if (arr == std::string::npos)
        return true; // empty or foreign document: no pairs to add
    size_t pos = arr;
    while (true) {
        size_t open = text.find('{', pos);
        size_t end = text.find(']', pos);
        if (open == std::string::npos ||
            (end != std::string::npos && end < open)) {
            break;
        }
        size_t close = text.find('}', open);
        if (close == std::string::npos)
            break;
        std::string obj = text.substr(open, close - open + 1);
        std::string file = extractString(obj, "file");
        std::string rule = extractString(obj, "rule");
        if (!file.empty() && !rule.empty())
            baseline_.insert({file, rule});
        pos = close + 1;
    }
    return true;
}

void
Diagnostics::finalize()
{
    for (Finding &f : findings_) {
        if (baseline_.count({f.file, f.rule}))
            f.baselined = true;
    }
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.message < b.message;
              });
}

void
Diagnostics::emitText(std::ostream &os, int filesScanned) const
{
    for (const Finding &f : findings_) {
        if (f.baselined)
            continue;
        os << f.file << ":" << f.line << ": "
           << severityName(f.severity) << ": [" << f.rule << "] "
           << f.message << "\n";
    }
    os << "edgeadapt_lint: " << filesScanned << " files, "
       << count(Severity::Error) << " error(s), "
       << count(Severity::Warning) << " warning(s)";
    if (baselinedCount())
        os << ", " << baselinedCount() << " baselined";
    os << "\n";
}

void
Diagnostics::emitJson(std::ostream &os, int filesScanned) const
{
    os << "{\"schema\":\"edgeadapt.lint.v1\",\"files\":" << filesScanned
       << ",\"findings\":[\n";
    bool first = true;
    for (const Finding &f : findings_) {
        if (f.baselined)
            continue;
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"file\":\"" << jsonEscape(f.file)
           << "\",\"line\":" << f.line << ",\"rule\":\""
           << jsonEscape(f.rule) << "\",\"severity\":\""
           << severityName(f.severity) << "\",\"message\":\""
           << jsonEscape(f.message) << "\"}";
    }
    os << "\n],\"counts\":{\"errors\":" << count(Severity::Error)
       << ",\"warnings\":" << count(Severity::Warning)
       << ",\"baselined\":" << baselinedCount() << "}}\n";
}

void
Diagnostics::emitSarif(std::ostream &os, int filesScanned) const
{
    os << "{\"version\":\"2.1.0\",\"$schema\":\"https://json."
          "schemastore.org/sarif-2.1.0.json\",\"runs\":[{"
          "\"tool\":{\"driver\":{\"name\":\"edgeadapt_lint\","
          "\"informationUri\":\"tools/lint\",\"rules\":[\n";
    bool first = true;
    for (const RuleInfo &r : ruleTable()) {
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"id\":\"" << jsonEscape(r.id)
           << "\",\"shortDescription\":{\"text\":\""
           << jsonEscape(r.summary)
           << "\"},\"defaultConfiguration\":{\"level\":\""
           << (r.severity == Severity::Error ? "error" : "warning")
           << "\"}}";
    }
    os << "\n]}},\"properties\":{\"filesScanned\":" << filesScanned
       << "},\"results\":[\n";
    first = true;
    for (const Finding &f : findings_) {
        if (f.baselined)
            continue;
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"ruleId\":\"" << jsonEscape(f.rule)
           << "\",\"level\":\""
           << (f.severity == Severity::Error ? "error" : "warning")
           << "\",\"message\":{\"text\":\"" << jsonEscape(f.message)
           << "\"},\"locations\":[{\"physicalLocation\":{"
              "\"artifactLocation\":{\"uri\":\""
           << jsonEscape(f.file)
           << "\"},\"region\":{\"startLine\":"
           << (f.line > 0 ? f.line : 1) << "}}}]}";
    }
    os << "\n]}]}\n";
}

int
Diagnostics::count(Severity sev) const
{
    int n = 0;
    for (const Finding &f : findings_) {
        if (!f.baselined && f.severity == sev)
            ++n;
    }
    return n;
}

int
Diagnostics::baselinedCount() const
{
    int n = 0;
    for (const Finding &f : findings_) {
        if (f.baselined)
            ++n;
    }
    return n;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if ((unsigned char)c < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof(hex), "\\u%04x", c);
                out += hex;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace ealint
