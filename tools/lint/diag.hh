/**
 * @file
 * Finding collection, output formatting, and baseline support for the
 * edgeadapt static analyzer.
 *
 * Findings accumulate unordered during the passes, are sorted by
 * (file, line, rule, message) before emission, and can be rendered as
 * human-readable text, as a machine-readable JSON document
 * (--format=json), or as SARIF 2.1.0 (--format=sarif) for code
 * scanning integrations. A baseline file — simply a previous --format=json
 * output — grandfathers known findings: a finding whose (file, rule)
 * pair appears in the baseline is counted but neither printed nor
 * fatal, so new rules can land before the last legacy violation dies.
 */

#ifndef EDGEADAPT_TOOLS_LINT_DIAG_HH
#define EDGEADAPT_TOOLS_LINT_DIAG_HH

#include <iosfwd>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "rules.hh"
#include "source.hh"

namespace ealint {

/** One reported violation. */
struct Finding
{
    std::string file;
    int line = 0;
    std::string rule;
    Severity severity = Severity::Error;
    std::string message;
    bool baselined = false;
};

/** Finding sink shared by all passes. */
class Diagnostics
{
  public:
    /**
     * Record a finding for @p rule (must exist in the rule table)
     * unless a NOLINT(rule) on that line of @p sf suppresses it.
     */
    void report(const SourceFile &sf, int line, const std::string &rule,
                const std::string &message);

    /** Record a finding with no suppression context (I/O errors). */
    void reportRaw(const std::string &file, int line,
                   const std::string &rule, const std::string &message);

    /**
     * Load (file, rule) pairs from a previous --format=json run.
     * @return false when the file cannot be read.
     */
    bool loadBaseline(const std::string &path);

    /** Sort findings and mark the baselined ones. Call once, at end. */
    void finalize();

    /** Emit the classic file:line: [rule] message listing. */
    void emitText(std::ostream &os, int filesScanned) const;

    /** Emit the edgeadapt.lint.v1 JSON document. */
    void emitJson(std::ostream &os, int filesScanned) const;

    /**
     * Emit a SARIF 2.1.0 log (one run, the full rule table in the
     * driver metadata, one result per unbaselined finding) for code
     * scanning UIs. Paths are emitted repo-relative as recorded.
     */
    void emitSarif(std::ostream &os, int filesScanned) const;

    /** @return unbaselined findings of @p sev. */
    int count(Severity sev) const;

    /** @return findings suppressed by the baseline. */
    int baselinedCount() const;

    const std::vector<Finding> &findings() const { return findings_; }

  private:
    std::vector<Finding> findings_;
    std::set<std::pair<std::string, std::string>> baseline_;
};

/** JSON-escape @p s (quotes, backslashes, control characters). */
std::string jsonEscape(const std::string &s);

} // namespace ealint

#endif // EDGEADAPT_TOOLS_LINT_DIAG_HH
