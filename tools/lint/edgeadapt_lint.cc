/**
 * @file
 * edgeadapt_lint: driver for the edgeadapt multi-pass static
 * analyzer. The heavy lifting lives in the lexer (lexer.cc), the
 * source model (source.cc), and the four passes (pass_*.cc); this
 * file owns the command line, file discovery, and exit status.
 *
 * Usage:
 *   edgeadapt_lint [--repo-root DIR] [--format=text|json|sarif]
 *                  [--baseline FILE] [--pass NAME]...
 *                  [--exclude REL_PREFIX]... [--werror]
 *                  [--changed-only] [--list-rules] PATH [PATH...]
 *
 * Passes (default: all): token, include-graph, unused-include,
 * instrumentation, parallel-region, whole-program. Suppression is
 * per-line and per-rule via NOLINT(rule-id), or its NEXTLINE spelling
 * for the line below; bare markers are themselves violations.
 * --baseline takes a previous --format=json report and grandfathers
 * its (file, rule) pairs. --format=sarif emits SARIF 2.1.0 for code
 * scanning UIs. --changed-only reads a file list from stdin (one path
 * per line, repo-relative or absolute — e.g. git diff --name-only)
 * and lints only the discovered files that appear in it, for a fast
 * local pre-commit loop; paths that no longer exist (deleted or
 * renamed entries in a diff) are skipped with a note. Because the
 * whole-program pass needs the full file set to resolve cross-TU
 * calls, --changed-only skips it unless it is selected explicitly
 * with --pass whole-program.
 *
 * Exits 0 when no unsuppressed errors were found (warnings do not
 * fail unless --werror), 1 on errors, 2 on usage or I/O problems.
 * The tool stays dependency-free (no gtest, no edgeadapt libs) so it
 * builds everywhere in seconds.
 */

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "diag.hh"
#include "passes.hh"
#include "rules.hh"
#include "source.hh"

namespace ealint {

const std::vector<Pass> &
passTable()
{
    static const std::vector<Pass> table = {
        {"token", runTokenPass},
        {"include-graph", runIncludeGraphPass},
        {"unused-include", runUnusedIncludePass},
        {"instrumentation", runInstrumentationPass},
        {"parallel-region", runParallelRegionPass},
        {"whole-program", runWholeProgramPass},
    };
    return table;
}

} // namespace ealint

namespace {

namespace fs = std::filesystem;
using namespace ealint;

bool
lintable(const fs::path &p)
{
    auto ext = p.extension();
    return ext == ".hh" || ext == ".cc" || ext == ".cpp";
}

int
usage()
{
    std::cerr << "usage: edgeadapt_lint [--repo-root DIR] "
                 "[--format=text|json|sarif] [--baseline FILE]\n"
                 "                      [--pass NAME]... [--exclude "
                 "REL_PREFIX]... [--werror]\n"
                 "                      [--changed-only] [--list-rules] "
                 "PATH [PATH...]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path repoRoot;
    std::vector<fs::path> roots;
    std::vector<std::string> excludes;
    std::vector<std::string> passNames;
    std::string format = "text";
    std::string baselinePath;
    bool werror = false;
    bool changedOnly = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (++i >= argc) {
                std::cerr << "edgeadapt_lint: " << flag
                          << " needs a value\n";
                return nullptr;
            }
            return argv[i];
        };
        if (arg == "--repo-root") {
            const char *v = value("--repo-root");
            if (!v)
                return 2;
            repoRoot = fs::path(v);
        } else if (arg == "--baseline") {
            const char *v = value("--baseline");
            if (!v)
                return 2;
            baselinePath = v;
        } else if (arg == "--pass") {
            const char *v = value("--pass");
            if (!v)
                return 2;
            passNames.push_back(v);
        } else if (arg == "--exclude") {
            const char *v = value("--exclude");
            if (!v)
                return 2;
            excludes.push_back(v);
        } else if (arg.rfind("--format=", 0) == 0) {
            format = arg.substr(9);
            if (format != "text" && format != "json" &&
                format != "sarif") {
                return usage();
            }
        } else if (arg == "--werror") {
            werror = true;
        } else if (arg == "--changed-only") {
            changedOnly = true;
        } else if (arg == "--list-rules") {
            for (const RuleInfo &r : ruleTable()) {
                std::cout << r.id << " (" << severityName(r.severity)
                          << ", " << r.pass << "): " << r.summary
                          << "\n";
            }
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            roots.emplace_back(arg);
        }
    }
    if (roots.empty())
        return usage();
    if (repoRoot.empty())
        repoRoot = fs::current_path();
    repoRoot = fs::weakly_canonical(repoRoot);

    for (const std::string &name : passNames) {
        bool known = false;
        for (const Pass &p : passTable())
            known = known || name == p.name;
        if (!known) {
            std::cerr << "edgeadapt_lint: unknown pass '" << name
                      << "'\n";
            return 2;
        }
    }

    // Discover files, deterministically ordered so reports diff
    // cleanly run to run.
    std::vector<fs::path> batch;
    for (const fs::path &root : roots) {
        std::error_code ec;
        if (fs::is_regular_file(root, ec)) {
            batch.push_back(fs::weakly_canonical(root));
            continue;
        }
        if (!fs::is_directory(root, ec)) {
            std::cerr << "edgeadapt_lint: no such path: " << root
                      << "\n";
            return 2;
        }
        for (auto it = fs::recursive_directory_iterator(root);
             it != fs::recursive_directory_iterator(); ++it) {
            if (it->is_regular_file() && lintable(it->path()))
                batch.push_back(fs::weakly_canonical(it->path()));
        }
    }
    std::sort(batch.begin(), batch.end());
    batch.erase(std::unique(batch.begin(), batch.end()), batch.end());

    // --changed-only: keep only discovered files that stdin names.
    // An empty list is a legitimate no-op (nothing changed). A diff
    // list routinely names files that no longer exist (deleted or
    // renamed-away entries); those are skipped with a note, never an
    // error — the pre-commit loop must survive any git diff output.
    if (changedOnly) {
        std::set<std::string> changed;
        std::string line;
        while (std::getline(std::cin, line)) {
            while (!line.empty() &&
                   (line.back() == '\r' || line.back() == ' ')) {
                line.pop_back();
            }
            if (line.empty())
                continue;
            if (line.rfind("./", 0) == 0)
                line = line.substr(2);
            std::error_code ec;
            fs::path inRepo =
                fs::weakly_canonical(repoRoot / line, ec);
            bool any = false;
            if (!ec && fs::is_regular_file(inRepo, ec)) {
                changed.insert(inRepo.generic_string());
                any = true;
            }
            ec.clear();
            fs::path asGiven = fs::weakly_canonical(fs::path(line), ec);
            if (!ec && fs::is_regular_file(asGiven, ec)) {
                changed.insert(asGiven.generic_string());
                any = true;
            }
            if (!any) {
                std::cerr << "edgeadapt_lint: note: skipping '" << line
                          << "' (not a file; deleted or renamed?)\n";
            }
        }
        std::vector<fs::path> kept;
        for (const fs::path &p : batch) {
            if (changed.count(p.generic_string()))
                kept.push_back(p);
        }
        batch.swap(kept);
    }

    Context ctx;
    ctx.repoRoot = repoRoot.generic_string();
    Diagnostics diag;
    for (const fs::path &p : batch) {
        std::string rel = fs::relative(p, repoRoot).generic_string();
        bool skip = false;
        for (const std::string &ex : excludes)
            skip = skip || rel.rfind(ex, 0) == 0;
        if (skip)
            continue;
        SourceFile sf;
        if (!loadSourceFile(p.generic_string(), rel, sf)) {
            diag.reportRaw(rel, 0, "io", "cannot open file");
            continue;
        }
        ctx.files.push_back(std::move(sf));
    }

    if (!baselinePath.empty() && !diag.loadBaseline(baselinePath)) {
        std::cerr << "edgeadapt_lint: cannot read baseline "
                  << baselinePath << "\n";
        return 2;
    }

    for (const Pass &p : passTable()) {
        if (!passNames.empty() &&
            std::find(passNames.begin(), passNames.end(), p.name) ==
                passNames.end()) {
            continue;
        }
        // Whole-program analysis over a partial file set would both
        // miss findings and invent them (unresolved calls look
        // worst-case); under --changed-only it only runs when asked
        // for by name.
        if (changedOnly && std::string(p.name) == "whole-program" &&
            passNames.empty()) {
            std::cerr << "edgeadapt_lint: note: skipping "
                         "whole-program pass under --changed-only "
                         "(pass --pass whole-program to force)\n";
            continue;
        }
        p.run(ctx, diag);
    }

    diag.finalize();
    int files = (int)ctx.files.size();
    if (format == "json")
        diag.emitJson(std::cout, files);
    else if (format == "sarif")
        diag.emitSarif(std::cout, files);
    else
        diag.emitText(std::cout, files);

    bool failed = diag.count(Severity::Error) > 0 ||
                  (werror && diag.count(Severity::Warning) > 0);
    return failed ? 1 : 0;
}
