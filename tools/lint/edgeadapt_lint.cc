/**
 * @file
 * edgeadapt-lint: a small static checker enforcing repo conventions
 * over src/, tests/, and bench/. Registered as a ctest test (label
 * "lint") so tier-1 fails on violations.
 *
 * Rules:
 *  - guard:    include-guard macros in .hh files must be derived from
 *              the file path (EDGEADAPT_<PATH>_HH, src/ stripped)
 *  - using-ns: no "using namespace" at any scope in headers
 *  - new:      no raw new/delete anywhere ("= delete" declarations and
 *              "new (addr)" placement syntax are recognized and allowed)
 *  - stdio:    no std::cout / bare printf in src/ — library code must
 *              report through inform()/warn() (base/logging.hh)
 *  - chrono:   no direct std::chrono in src/ outside src/profile/ and
 *              src/obs/ — time through profile::Stopwatch or trace
 *              spans so the repo has one timing idiom
 *  - tab:      no tab characters
 *  - space:    no trailing whitespace
 *
 * A line whose raw text contains "NOLINT" is exempt from the token
 * rules (guard/tab/space still apply). Token rules run on a copy of
 * the source with comments and string/char literals blanked out, so
 * prose like "the new statistics" never trips them.
 *
 * Usage: edgeadapt_lint --repo-root DIR PATH [PATH...]
 * Exits 0 when clean, 1 when violations were found, 2 on usage or
 * I/O errors. This tool is intentionally dependency-free (no gtest,
 * no edgeadapt libs) so it builds everywhere in seconds.
 */

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation
{
    std::string file; // repo-relative path
    int line = 0;
    std::string rule;
    std::string message;
};

std::vector<Violation> violations;

void
report(const std::string &file, int line, const std::string &rule,
       const std::string &message)
{
    violations.push_back({file, line, rule, message});
}

/** @return source text with comments and literals blanked to spaces. */
std::string
stripCommentsAndStrings(const std::string &src)
{
    enum class St { Code, Slash, Line, Block, BlockStar, Str, Chr };
    std::string out(src);
    St st = St::Code;
    bool escaped = false;
    for (size_t i = 0; i < src.size(); ++i) {
        char c = src[i];
        switch (st) {
          case St::Code:
            if (c == '/') {
                st = St::Slash;
            } else if (c == '"') {
                st = St::Str;
                escaped = false;
            } else if (c == '\'') {
                st = St::Chr;
                escaped = false;
            }
            break;
          case St::Slash:
            if (c == '/') {
                out[i - 1] = ' ';
                out[i] = ' ';
                st = St::Line;
            } else if (c == '*') {
                out[i - 1] = ' ';
                out[i] = ' ';
                st = St::Block;
            } else {
                st = St::Code;
            }
            break;
          case St::Line:
            if (c == '\n')
                st = St::Code;
            else
                out[i] = ' ';
            break;
          case St::Block:
            if (c == '*')
                st = St::BlockStar;
            if (c != '\n')
                out[i] = ' ';
            break;
          case St::BlockStar:
            if (c == '/')
                st = St::Code;
            else if (c != '*')
                st = St::Block;
            if (c != '\n')
                out[i] = ' ';
            break;
          case St::Str:
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                st = St::Code;
            if (c != '\n' && st != St::Code)
                out[i] = ' ';
            break;
          case St::Chr:
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '\'')
                st = St::Code;
            if (c != '\n' && st != St::Code)
                out[i] = ' ';
            break;
        }
    }
    return out;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string cur;
    for (char c : text) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        lines.push_back(cur);
    return lines;
}

bool
isWordChar(char c)
{
    return std::isalnum((unsigned char)c) || c == '_';
}

/** Find whole-word occurrences of @p word in @p line. */
bool
containsWord(const std::string &line, const std::string &word,
             size_t *pos_out = nullptr)
{
    size_t pos = 0;
    while ((pos = line.find(word, pos)) != std::string::npos) {
        bool leftOk = pos == 0 || !isWordChar(line[pos - 1]);
        size_t end = pos + word.size();
        bool rightOk = end >= line.size() || !isWordChar(line[end]);
        if (leftOk && rightOk) {
            if (pos_out)
                *pos_out = pos;
            return true;
        }
        pos = end;
    }
    return false;
}

/** @return last non-space character before @p pos, or '\0'. */
char
lastCodeCharBefore(const std::string &line, size_t pos)
{
    while (pos > 0) {
        char c = line[--pos];
        if (!std::isspace((unsigned char)c))
            return c;
    }
    return '\0';
}

/** @return expected include-guard macro for a repo-relative path. */
std::string
expectedGuard(std::string rel)
{
    const std::string prefix = "src/";
    if (rel.rfind(prefix, 0) == 0)
        rel = rel.substr(prefix.size());
    std::string guard = "EDGEADAPT_";
    for (char c : rel) {
        guard += std::isalnum((unsigned char)c)
                     ? (char)std::toupper((unsigned char)c)
                     : '_';
    }
    return guard;
}

/** Extract the macro named on a "#ifndef X" / "#define X" line. */
std::string
directiveMacro(const std::string &line, const std::string &directive)
{
    size_t pos = line.find('#');
    if (pos == std::string::npos)
        return "";
    ++pos;
    while (pos < line.size() && std::isspace((unsigned char)line[pos]))
        ++pos;
    if (line.compare(pos, directive.size(), directive) != 0)
        return "";
    pos += directive.size();
    if (pos >= line.size() || !std::isspace((unsigned char)line[pos]))
        return "";
    while (pos < line.size() && std::isspace((unsigned char)line[pos]))
        ++pos;
    size_t end = pos;
    while (end < line.size() && isWordChar(line[end]))
        ++end;
    return line.substr(pos, end - pos);
}

void
checkIncludeGuard(const std::string &rel,
                  const std::vector<std::string> &code_lines)
{
    std::string want = expectedGuard(rel);
    for (size_t i = 0; i < code_lines.size(); ++i) {
        std::string name = directiveMacro(code_lines[i], "ifndef");
        if (name.empty())
            continue;
        if (name != want) {
            report(rel, (int)i + 1, "guard",
                   "include guard " + name + " should be " + want);
            return;
        }
        if (i + 1 >= code_lines.size() ||
            directiveMacro(code_lines[i + 1], "define") != want) {
            report(rel, (int)i + 2, "guard",
                   "#ifndef " + want + " must be followed by #define " +
                       want);
        }
        return;
    }
    report(rel, 1, "guard", "header has no include guard (want " + want +
                                ")");
}

void
lintFile(const fs::path &path, const std::string &rel)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        report(rel, 0, "io", "cannot open file");
        return;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string raw = buf.str();

    bool isHeader = path.extension() == ".hh";
    bool isLibrary = rel.rfind("src/", 0) == 0;
    // The two sanctioned homes of std::chrono: the stopwatch and the
    // trace clock. Everything else times through them.
    bool chronoAllowed = rel.rfind("src/profile/", 0) == 0 ||
                         rel.rfind("src/obs/", 0) == 0;

    std::vector<std::string> rawLines = splitLines(raw);
    std::vector<std::string> codeLines =
        splitLines(stripCommentsAndStrings(raw));

    for (size_t i = 0; i < rawLines.size(); ++i) {
        const std::string &line = rawLines[i];
        int ln = (int)i + 1;
        if (line.find('\t') != std::string::npos)
            report(rel, ln, "tab", "tab character (indent with spaces)");
        if (!line.empty() &&
            std::isspace((unsigned char)line.back()))
            report(rel, ln, "space", "trailing whitespace");
    }

    for (size_t i = 0; i < codeLines.size(); ++i) {
        const std::string &code = codeLines[i];
        int ln = (int)i + 1;
        if (i < rawLines.size() &&
            rawLines[i].find("NOLINT") != std::string::npos) {
            continue;
        }
        if (isHeader && code.find("using namespace") != std::string::npos)
            report(rel, ln, "using-ns", "using namespace in a header");
        size_t pos = 0;
        if (containsWord(code, "new", &pos)) {
            // Placement new over caller-provided storage is fine; the
            // rule targets raw heap allocation.
            size_t after = pos + 3;
            while (after < code.size() &&
                   std::isspace((unsigned char)code[after])) {
                ++after;
            }
            if (after >= code.size() || code[after] != '(') {
                report(rel, ln, "new",
                       "raw new (use std::make_unique or containers)");
            }
        }
        if (containsWord(code, "delete", &pos)) {
            if (lastCodeCharBefore(code, pos) != '=') {
                report(rel, ln, "new",
                       "raw delete (owning pointers must be smart)");
            }
        }
        if (isLibrary) {
            if (code.find("std::cout") != std::string::npos) {
                report(rel, ln, "stdio",
                       "std::cout in library code (use inform()/warn())");
            }
            if (containsWord(code, "printf")) {
                report(rel, ln, "stdio",
                       "printf in library code (use inform()/warn())");
            }
            if (!chronoAllowed &&
                (code.find("std::chrono") != std::string::npos ||
                 code.find("<chrono>") != std::string::npos)) {
                report(rel, ln, "chrono",
                       "std::chrono outside src/profile//src/obs/ "
                       "(use profile::Stopwatch or trace spans)");
            }
        }
    }

    if (isHeader)
        checkIncludeGuard(rel, codeLines);
}

bool
lintable(const fs::path &p)
{
    auto ext = p.extension();
    return ext == ".hh" || ext == ".cc" || ext == ".cpp";
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path repoRoot;
    std::vector<fs::path> roots;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--repo-root") {
            if (++i >= argc) {
                std::cerr << "edgeadapt_lint: --repo-root needs a value\n";
                return 2;
            }
            repoRoot = fs::path(argv[i]);
        } else {
            roots.emplace_back(arg);
        }
    }
    if (roots.empty()) {
        std::cerr << "usage: edgeadapt_lint --repo-root DIR PATH...\n";
        return 2;
    }
    if (repoRoot.empty())
        repoRoot = fs::current_path();
    repoRoot = fs::weakly_canonical(repoRoot);

    int files = 0;
    for (const fs::path &root : roots) {
        std::error_code ec;
        if (fs::is_regular_file(root, ec)) {
            fs::path abs = fs::weakly_canonical(root);
            lintFile(abs,
                     fs::relative(abs, repoRoot).generic_string());
            ++files;
            continue;
        }
        if (!fs::is_directory(root, ec)) {
            std::cerr << "edgeadapt_lint: no such path: " << root << "\n";
            return 2;
        }
        std::vector<fs::path> batch;
        for (auto it = fs::recursive_directory_iterator(root);
             it != fs::recursive_directory_iterator(); ++it) {
            if (it->is_regular_file() && lintable(it->path()))
                batch.push_back(fs::weakly_canonical(it->path()));
        }
        // Deterministic order makes diffs of lint output stable.
        std::sort(batch.begin(), batch.end());
        for (const fs::path &p : batch) {
            lintFile(p, fs::relative(p, repoRoot).generic_string());
            ++files;
        }
    }

    for (const Violation &v : violations) {
        std::cout << v.file << ":" << v.line << ": [" << v.rule << "] "
                  << v.message << "\n";
    }
    std::cout << "edgeadapt_lint: " << files << " files, "
              << violations.size() << " violation(s)\n";
    return violations.empty() ? 0 : 1;
}
