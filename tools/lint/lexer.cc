#include "lexer.hh"

#include <cctype>

namespace ealint {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha((unsigned char)c) || c == '_';
}

/** Cursor over the source with line/column tracking. */
struct Cursor
{
    const std::string &src;
    size_t i = 0;
    int line = 1;
    int col = 1;

    explicit Cursor(const std::string &s) : src(s) {}

    bool done() const { return i >= src.size(); }
    char peek(size_t off = 0) const
    {
        return i + off < src.size() ? src[i + off] : '\0';
    }

    char
    advance()
    {
        char c = src[i++];
        if (c == '\n') {
            ++line;
            col = 1;
        } else {
            ++col;
        }
        return c;
    }

    /** Fold "\\\n" (and "\\\r\n") continuations into nothing. */
    bool
    skipContinuation()
    {
        if (peek() != '\\')
            return false;
        size_t off = 1;
        if (peek(1) == '\r' && peek(2) == '\n')
            off = 3;
        else if (peek(1) == '\n')
            off = 2;
        else
            return false;
        while (off--)
            advance();
        return true;
    }
};

/** Consume a // comment (cursor past the second '/'). */
std::string
lexLineComment(Cursor &cur)
{
    std::string text;
    while (!cur.done() && cur.peek() != '\n') {
        if (!cur.skipContinuation())
            text += cur.advance();
    }
    return text;
}

/** Consume a block comment (cursor past the opening "slash-star"). */
std::string
lexBlockComment(Cursor &cur)
{
    std::string text;
    while (!cur.done()) {
        char c = cur.advance();
        if (c == '*' && cur.peek() == '/') {
            cur.advance();
            return text;
        }
        text += c;
    }
    return text;
}

/** Consume a quoted literal body up to the unescaped @p quote. */
std::string
lexQuoted(Cursor &cur, char quote)
{
    std::string text;
    while (!cur.done()) {
        char c = cur.advance();
        if (c == '\\' && !cur.done()) {
            text += c;
            text += cur.advance();
            continue;
        }
        if (c == quote || c == '\n')
            break;
        text += c;
    }
    return text;
}

/** Consume a raw string R"delim(...)delim" (cursor past the quote). */
std::string
lexRawString(Cursor &cur)
{
    std::string delim;
    while (!cur.done() && cur.peek() != '(' && cur.peek() != '"' &&
           delim.size() < 16) {
        delim += cur.advance();
    }
    if (cur.peek() == '(')
        cur.advance();
    std::string close = ")" + delim + "\"";
    std::string text;
    while (!cur.done()) {
        if (cur.src.compare(cur.i, close.size(), close) == 0) {
            for (size_t k = 0; k < close.size(); ++k)
                cur.advance();
            break;
        }
        text += cur.advance();
    }
    return text;
}

/** Lex the remainder of a '#' directive line, honoring continuations. */
Directive
lexDirective(Cursor &cur, int hashLine, std::vector<Comment> *trailing)
{
    std::string body;
    while (!cur.done() && cur.peek() != '\n') {
        if (cur.skipContinuation()) {
            body += ' ';
            continue;
        }
        char c = cur.peek();
        if (c == '/' && cur.peek(1) == '/') {
            int ln = cur.line;
            cur.advance();
            cur.advance();
            trailing->push_back({ln, lexLineComment(cur)});
            break;
        }
        if (c == '/' && cur.peek(1) == '*') {
            int ln = cur.line;
            cur.advance();
            cur.advance();
            trailing->push_back({ln, lexBlockComment(cur)});
            body += ' ';
            continue;
        }
        body += cur.advance();
    }

    Directive d;
    d.line = hashLine;
    size_t p = 0;
    while (p < body.size() && std::isspace((unsigned char)body[p]))
        ++p;
    size_t nameEnd = p;
    while (nameEnd < body.size() && isWordChar(body[nameEnd]))
        ++nameEnd;
    d.name = body.substr(p, nameEnd - p);
    p = nameEnd;
    while (p < body.size() && std::isspace((unsigned char)body[p]))
        ++p;
    size_t end = body.size();
    while (end > p && std::isspace((unsigned char)body[end - 1]))
        --end;
    d.rest = body.substr(p, end - p);
    return d;
}

} // namespace

bool
isWordChar(char c)
{
    return std::isalnum((unsigned char)c) || c == '_';
}

LexResult
lex(const std::string &src)
{
    LexResult out;
    Cursor cur(src);
    bool atLineStart = true;

    while (!cur.done()) {
        if (cur.skipContinuation())
            continue;
        char c = cur.peek();

        if (c == '\n') {
            cur.advance();
            atLineStart = true;
            continue;
        }
        if (std::isspace((unsigned char)c)) {
            cur.advance();
            continue;
        }
        if (c == '/' && cur.peek(1) == '/') {
            int ln = cur.line;
            cur.advance();
            cur.advance();
            out.comments.push_back({ln, lexLineComment(cur)});
            continue;
        }
        if (c == '/' && cur.peek(1) == '*') {
            int ln = cur.line;
            cur.advance();
            cur.advance();
            out.comments.push_back({ln, lexBlockComment(cur)});
            continue;
        }
        if (c == '#' && atLineStart) {
            int hashLine = cur.line;
            cur.advance();
            out.directives.push_back(
                lexDirective(cur, hashLine, &out.comments));
            continue;
        }
        atLineStart = false;

        Token tok;
        tok.line = cur.line;
        tok.col = cur.col;

        if (c == '"') {
            cur.advance();
            tok.kind = Token::Kind::String;
            tok.text = lexQuoted(cur, '"');
            out.tokens.push_back(std::move(tok));
            continue;
        }
        if (c == '\'') {
            cur.advance();
            tok.kind = Token::Kind::CharLit;
            tok.text = lexQuoted(cur, '\'');
            out.tokens.push_back(std::move(tok));
            continue;
        }
        if (c == 'R' && cur.peek(1) == '"') {
            cur.advance();
            cur.advance();
            tok.kind = Token::Kind::String;
            tok.text = lexRawString(cur);
            out.tokens.push_back(std::move(tok));
            continue;
        }
        if (isIdentStart(c)) {
            tok.kind = Token::Kind::Identifier;
            while (!cur.done() && isWordChar(cur.peek()))
                tok.text += cur.advance();
            out.tokens.push_back(std::move(tok));
            continue;
        }
        if (std::isdigit((unsigned char)c) ||
            (c == '.' && std::isdigit((unsigned char)cur.peek(1)))) {
            tok.kind = Token::Kind::Number;
            tok.text += cur.advance();
            while (!cur.done()) {
                char n = cur.peek();
                // pp-number: alnum, '.', digit separators, exponent
                // signs after e/E/p/P.
                if (isWordChar(n) || n == '.' || n == '\'') {
                    tok.text += cur.advance();
                } else if ((n == '+' || n == '-') && !tok.text.empty() &&
                           (std::tolower((unsigned char)tok.text.back()) ==
                                'e' ||
                            std::tolower((unsigned char)tok.text.back()) ==
                                'p')) {
                    tok.text += cur.advance();
                } else {
                    break;
                }
            }
            out.tokens.push_back(std::move(tok));
            continue;
        }
        tok.kind = Token::Kind::Punct;
        tok.text = std::string(1, cur.advance());
        out.tokens.push_back(std::move(tok));
    }
    return out;
}

} // namespace ealint
