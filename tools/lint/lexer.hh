/**
 * @file
 * C++ tokenizer for the edgeadapt static analyzer. Produces a stream
 * of code tokens (identifiers, literals, punctuation) plus a separate
 * list of preprocessor directives; comments are consumed and never
 * surface as tokens. All rules share this one lexer, replacing the
 * blank-out-and-substring matching of the original single-file lint.
 *
 * The lexer is deliberately approximate where exactness costs more
 * than it buys for lint rules: it does not expand macros, does not
 * track digraphs, and folds backslash-newline continuations into
 * plain whitespace. It does understand line/block comments, string
 * and character literals (including escapes and raw strings), and
 * whole-line preprocessor directives with continuations.
 */

#ifndef EDGEADAPT_TOOLS_LINT_LEXER_HH
#define EDGEADAPT_TOOLS_LINT_LEXER_HH

#include <string>
#include <vector>

namespace ealint {

/** One code token with its 1-based source position. */
struct Token
{
    enum class Kind {
        Identifier, ///< [A-Za-z_][A-Za-z0-9_]*
        Number,     ///< pp-number (1.5e-3, 0x1F, 1'000, ...)
        String,     ///< "..." or R"(...)" (text excludes quotes)
        CharLit,    ///< '...'
        Punct,      ///< single punctuation character
    };

    Kind kind = Kind::Punct;
    std::string text;
    int line = 0;
    int col = 0;

    /** Punctuation test: literals can spell "{" too, so kind counts. */
    bool is(const char *t) const
    {
        return kind == Kind::Punct && text == t;
    }
    bool isIdent(const char *t) const
    {
        return kind == Kind::Identifier && text == t;
    }
};

/**
 * One preprocessor directive, with backslash-newline continuations
 * folded into @ref rest. @ref line is the line of the '#'.
 */
struct Directive
{
    int line = 0;
    std::string name; ///< "include", "define", "ifndef", ...
    std::string rest; ///< trimmed text after the name
};

/**
 * One comment's text (no delimiters). Block comments keep their
 * embedded newlines so callers can map text back to lines.
 */
struct Comment
{
    int line = 0; ///< line the comment opens on
    std::string text;
};

/** Lexer output: code tokens, directives, and comments. */
struct LexResult
{
    std::vector<Token> tokens;
    std::vector<Directive> directives;
    std::vector<Comment> comments;
};

/** Tokenize @p src. Never fails; unknown bytes become Punct tokens. */
LexResult lex(const std::string &src);

/** @return true when @p c can start or continue an identifier. */
bool isWordChar(char c);

} // namespace ealint

#endif // EDGEADAPT_TOOLS_LINT_LEXER_HH
