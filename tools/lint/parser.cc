#include "parser.hh"

#include <algorithm>
#include <utility>

namespace ealint {

namespace {

/** Keywords that can never be a declared variable's name. */
bool
isReservedName(const std::string &s)
{
    return s == "auto" || s == "const" || s == "constexpr" ||
           s == "static" || s == "mutable" || s == "volatile" ||
           s == "unsigned" || s == "signed" || s == "long" ||
           s == "short" || s == "int" || s == "float" ||
           s == "double" || s == "char" || s == "bool" ||
           s == "void" || s == "inline" || s == "register" ||
           s == "thread_local" || s == "typename" || s == "struct" ||
           s == "class" || s == "enum" || s == "union" ||
           s == "operator" || s == "new" || s == "delete" ||
           s == "sizeof" || s == "this" || s == "explicit" ||
           s == "virtual" || s == "extern" || s == "friend" ||
           s == "noexcept" || s == "final" || s == "override";
}

/** Statement-head keywords that rule out a declaration. */
bool
isControlKeyword(const std::string &s)
{
    return s == "return" || s == "if" || s == "else" || s == "for" ||
           s == "while" || s == "do" || s == "switch" ||
           s == "case" || s == "default" || s == "break" ||
           s == "continue" || s == "goto" || s == "throw" ||
           s == "using" || s == "typedef" || s == "template" ||
           s == "namespace" || s == "co_return" || s == "co_await" ||
           s == "co_yield" || s == "delete" || s == "new";
}

/** Builds the scope tree in a single recursive descent. */
struct Parser
{
    const std::vector<Token> &toks;
    FileScopes out;

    /** Enclosing namespace names while descending ("" for anonymous). */
    std::vector<std::string> nsStack;

    explicit Parser(const LexResult &lex) : toks(lex.tokens) {}

    std::string
    nsPath() const
    {
        std::string p;
        for (const std::string &n : nsStack) {
            if (!p.empty())
                p += "::";
            p += n.empty() ? "(anon)" : n;
        }
        return p;
    }

    // ---- small token utilities --------------------------------------

    bool is(size_t i, const char *t) const
    {
        return i < toks.size() && toks[i].is(t);
    }
    bool isIdent(size_t i) const
    {
        return i < toks.size() &&
               toks[i].kind == Token::Kind::Identifier;
    }
    bool isIdent(size_t i, const char *t) const
    {
        return i < toks.size() && toks[i].isIdent(t);
    }

    /** Index just past the closer matching the opener at @p i. */
    size_t
    matchForward(size_t i, const char *open, const char *close) const
    {
        int depth = 0;
        for (; i < toks.size(); ++i) {
            if (toks[i].is(open))
                ++depth;
            else if (toks[i].is(close) && --depth == 0)
                return i + 1;
        }
        return toks.size();
    }

    /**
     * Try to treat '<' at @p i as a template-argument group. @return
     * index past the matching '>', or 0 when no balanced '>' appears
     * before a top-level ';', '{' or '}' (a comparison, then).
     */
    size_t
    matchTemplateArgs(size_t i) const
    {
        int depth = 0;
        for (; i < toks.size(); ++i) {
            const Token &t = toks[i];
            if (t.is("<")) {
                ++depth;
            } else if (t.is(">")) {
                if (--depth == 0)
                    return i + 1;
            } else if (t.is("(")) {
                i = matchForward(i, "(", ")") - 1;
            } else if (t.is(";") || t.is("{") || t.is("}")) {
                return 0;
            }
        }
        return 0;
    }

    /**
     * @return true when '[' at @p i introduces a lambda rather than a
     * subscript: the previous token cannot end a postfix expression.
     */
    bool
    isLambdaIntro(size_t i) const
    {
        if (!is(i, "["))
            return false;
        if (is(i + 1, "[")) // [[attribute]]
            return false;
        if (i == 0)
            return true;
        const Token &p = toks[i - 1];
        if (p.is(")") || p.is("]"))
            return false;
        if (p.kind == Token::Kind::Identifier)
            return p.isIdent("return") || p.isIdent("throw") ||
                   p.isIdent("co_return") || p.isIdent("co_yield");
        return p.kind == Token::Kind::Punct;
    }

    // ---- scope bookkeeping ------------------------------------------

    int
    addScope(Scope::Kind kind, int parent, int line)
    {
        Scope s;
        s.kind = kind;
        s.parent = parent;
        s.line = line;
        out.scopes.push_back(std::move(s));
        int idx = (int)out.scopes.size() - 1;
        if (parent >= 0)
            out.scopes[(size_t)parent].children.push_back(idx);
        return idx;
    }

    // ---- declarations -----------------------------------------------

    /** Specifier flags gathered while scanning a statement head. */
    struct HeadInfo
    {
        std::vector<size_t> idents; ///< identifier token indices
        bool sawStatic = false;
        bool sawAtomic = false;
        bool sawThreadLocal = false;
        bool constBeforeStar = false;
        bool constAfterStar = false;
        bool sawStar = false;
        bool sawAmp = false;
        size_t stop = 0; ///< first token not consumed by the head
    };

    /**
     * Scan declaration-specifier/declarator material from @p i:
     * identifiers, '::' pairs, template-argument groups, '*', '&'.
     */
    HeadInfo
    scanHead(size_t i, size_t end) const
    {
        HeadInfo h;
        while (i < end) {
            const Token &t = toks[i];
            if (t.kind == Token::Kind::Identifier) {
                if (isControlKeyword(t.text))
                    break;
                if (t.text == "const" || t.text == "constexpr") {
                    (h.sawStar ? h.constAfterStar
                               : h.constBeforeStar) = true;
                    ++i;
                    continue;
                }
                if (t.text == "static") {
                    h.sawStatic = true;
                    ++i;
                    continue;
                }
                if (t.text == "thread_local") {
                    h.sawThreadLocal = true;
                    ++i;
                    continue;
                }
                if (t.text == "atomic")
                    h.sawAtomic = true;
                h.idents.push_back(i);
                ++i;
                continue;
            }
            if (isPunctSeq(toks, i, "::")) {
                i += 2;
                continue;
            }
            if (t.is("*")) {
                h.sawStar = true;
                ++i;
                continue;
            }
            if (t.is("&")) {
                h.sawAmp = true;
                ++i;
                continue;
            }
            if (t.is("<") && !h.idents.empty()) {
                size_t past = matchTemplateArgs(i);
                if (!past)
                    break;
                // "atomic<int>" marks the declared object atomic.
                for (size_t k = i + 1; k + 1 < past; ++k) {
                    if (toks[k].isIdent("atomic"))
                        h.sawAtomic = true;
                }
                i = past;
                continue;
            }
            break;
        }
        h.stop = i;
        return h;
    }

    /** Register one declared name with flags from its head. */
    VarDecl &
    addDecl(int scope, const HeadInfo &h, size_t nameTok, bool induction,
            bool param, int paramIndex)
    {
        VarDecl d;
        d.name = toks[nameTok].text;
        d.line = toks[nameTok].line;
        d.tok = nameTok;
        d.isParam = param;
        d.isInduction = induction;
        d.isStatic = h.sawStatic;
        d.isAtomic = h.sawAtomic;
        d.isThreadLocal = h.sawThreadLocal;
        d.isPointer = h.sawStar;
        d.isRef = h.sawAmp;
        // The type identifier sits just before the declared name in
        // the head; for later declarators of a list ("float *a, *b")
        // the head's last ident is the *first* name, so the same
        // second-to-last slot still holds the type.
        if (h.idents.size() >= 2)
            d.typeName = toks[h.idents[h.idents.size() - 2]].text;
        if (h.sawStar) {
            d.pointeeConst = h.constBeforeStar;
            d.selfConst = h.constAfterStar;
        } else {
            d.selfConst = h.constBeforeStar || h.constAfterStar;
            d.pointeeConst = d.selfConst;
        }
        d.paramIndex = paramIndex;
        Scope &s = out.scopes[(size_t)scope];
        s.decls.push_back(std::move(d));
        return s.decls.back();
    }

    /**
     * Walk an initializer / expression region from @p i to the next
     * top-level ';' or ',' (or @p end / unbalanced '}'), parsing any
     * lambda expressions found along the way into @p scope. @p
     * bindName names a lambda the initializer *starts* with.
     * @return index of the terminator.
     */
    size_t
    walkExpr(size_t i, size_t end, int scope, const std::string &bindName)
    {
        int depth = 0;
        bool first = true;
        while (i < end) {
            const Token &t = toks[i];
            if (isLambdaIntro(i)) {
                i = parseLambda(i, end, scope,
                                first ? bindName : std::string());
                first = false;
                continue;
            }
            first = false;
            if (t.is("(") || t.is("[") || t.is("{")) {
                ++depth;
            } else if (t.is(")") || t.is("]")) {
                if (--depth < 0)
                    return i;
            } else if (t.is("}")) {
                if (--depth < 0)
                    return i;
            } else if (depth == 0 && (t.is(";") || t.is(","))) {
                return i;
            }
            ++i;
        }
        return end;
    }

    /**
     * Try to parse a declaration statement (or prototype/definition
     * dispatch) at @p i in @p scope. @return index past the statement
     * when it was a declaration or function, 0 otherwise.
     */
    size_t
    tryDecl(size_t i, size_t end, int scope, bool induction)
    {
        HeadInfo h = scanHead(i, end);
        if (h.idents.empty())
            return 0;
        size_t nameTok = h.idents.back();
        bool qualified =
            nameTok >= 2 && isPunctSeq(toks, nameTok - 2, "::");
        const std::string &name = toks[nameTok].text;
        if (isReservedName(name))
            return 0;
        size_t j = h.stop;
        if (qualified) {
            // An out-of-line member/namespace definition
            // ("Tensor Conv2d::forward(...) { ... }") gets a Function
            // scope; tryFunction rejects mere calls and out-of-line
            // static member initializers ("int Foo::n(0);") because
            // no body brace follows. Any other qualified tail
            // ("testing::FLAGS_x = ...") is an assignment to a
            // foreign name, never a declaration.
            if (j < end && toks[j].is("(") && !inFunctionContext(scope))
                return tryFunction(i, end, scope, h);
            return 0;
        }
        bool twoIdents = h.idents.size() >= 2;

        if (j < end && toks[j].is("(")) {
            if (!inFunctionContext(scope) || !twoIdents) {
                // File scope: function definition or prototype.
                return tryFunction(i, end, scope, h);
            }
            // Local "Rng rng(401);" — but a definition of a local
            // helper struct's method etc. still looks the same, so
            // check what follows the parens: ';' means ctor-init.
            size_t past = matchForward(j, "(", ")");
            if (past < end && toks[past].is(";")) {
                VarDecl &d = addDecl(scope, h, nameTok, induction,
                                     false, -1);
                d.initBegin = j + 1;
                d.initEnd = past - 1;
                // Lambdas inside ctor arguments still need scopes.
                walkExpr(j + 1, past - 1, scope, std::string());
                return past + 1;
            }
            return tryFunction(i, end, scope, h);
        }

        if (j >= end || !twoIdents)
            return 0;
        const Token &stop = toks[j];
        if (!stop.is("=") && !stop.is(";") && !stop.is(",") &&
            !stop.is("{") && !stop.is("[")) {
            return 0;
        }
        if (stop.is("=") && is(j + 1, "=")) // '==' comparison
            return 0;

        // Declarator list: name [array][= init | {init}] (, ...)* ;
        // walkExpr can parse lambdas, growing the scope vector, so the
        // declaration is re-fetched by index, never held by reference.
        size_t declNameTok = nameTok;
        HeadInfo flags = h;
        while (true) {
            size_t di = out.scopes[(size_t)scope].decls.size();
            addDecl(scope, flags, declNameTok, induction, false, -1);
            auto decl = [&]() -> VarDecl & {
                return out.scopes[(size_t)scope].decls[di];
            };
            while (is(j, "["))
                j = matchForward(j, "[", "]");
            if (is(j, "{")) {
                decl().initBegin = j + 1;
                size_t past = matchForward(j, "{", "}");
                decl().initEnd = past - 1;
                walkExpr(j + 1, past - 1, scope, std::string());
                j = past;
            } else if (is(j, "=")) {
                decl().initBegin = j + 1;
                std::string dname = decl().name;
                j = walkExpr(j + 1, end, scope, dname);
                decl().initEnd = j;
            }
            if (is(j, ";"))
                return j + 1;
            if (!is(j, ","))
                return j; // range-for ':' / malformed: stop here
            // Next declarator: fresh '*'/'&' state, same specifiers.
            ++j;
            flags.sawStar = flags.sawAmp = false;
            while (is(j, "*") || is(j, "&")) {
                (toks[j].is("*") ? flags.sawStar : flags.sawAmp) = true;
                ++j;
            }
            if (!isIdent(j) || isReservedName(toks[j].text))
                return j;
            declNameTok = j;
            ++j;
        }
    }

    /** @return true when @p scope sits inside a function or lambda. */
    bool
    inFunctionContext(int scope) const
    {
        for (int s = scope; s >= 0; s = out.scopes[(size_t)s].parent) {
            Scope::Kind k = out.scopes[(size_t)s].kind;
            if (k == Scope::Kind::Function || k == Scope::Kind::Lambda)
                return true;
        }
        return false;
    }

    // ---- functions and lambdas --------------------------------------

    /** Parse the parameter list tokens (@p b, @p e exclusive of the
     *  parens) into @p scope. */
    void
    parseParams(size_t b, size_t e, int scope)
    {
        int index = 0;
        size_t i = b;
        while (i < e) {
            // One parameter: up to the next top-level ','.
            size_t pEnd = i;
            int depth = 0;
            while (pEnd < e) {
                const Token &t = toks[pEnd];
                if (t.is("(") || t.is("<") || t.is("{") || t.is("["))
                    ++depth;
                else if (t.is(")") || t.is(">") || t.is("}") ||
                         t.is("]"))
                    --depth;
                else if (t.is(",") && depth == 0)
                    break;
                ++pEnd;
            }
            // Default arguments are not part of the declarator.
            size_t declEnd = i;
            while (declEnd < pEnd && !toks[declEnd].is("="))
                ++declEnd;
            HeadInfo h = scanHead(i, declEnd);
            if (h.idents.size() >= 2) {
                size_t nameTok = h.idents.back();
                if (!isReservedName(toks[nameTok].text))
                    addDecl(scope, h, nameTok, false, true, index);
            }
            ++index;
            i = pEnd + 1;
        }
    }

    /**
     * Decide whether the head at @p i that hit a '(' is a function
     * definition (body follows) or just a prototype/expression, and
     * parse it. @return index past the construct, 0 when it is not a
     * function at all.
     */
    size_t
    tryFunction(size_t /*headStart*/, size_t end, int scope,
                const HeadInfo &h)
    {
        size_t nameTok = h.idents.back();
        size_t paren = h.stop;
        if (!is(paren, "("))
            return 0;
        size_t pastParams = matchForward(paren, "(", ")");
        size_t j = pastParams;
        // Qualifiers, trailing return, ctor-init list — anything up
        // to the body '{' or a terminating ';'/'='.
        while (j < end) {
            const Token &t = toks[j];
            if (t.is("{"))
                break;
            if (t.is(";"))
                return 0; // prototype: no scope to build
            if (t.is("="))
                return 0; // "= default" / "= delete" / "= 0"
            if (t.is("(")) {
                j = matchForward(j, "(", ")");
                continue;
            }
            ++j;
        }
        if (j >= end)
            return 0;
        int fn = addScope(Scope::Kind::Function, scope,
                          toks[nameTok].line);
        out.scopes[(size_t)fn].name = toks[nameTok].text;
        out.scopes[(size_t)fn].nsPath = nsPath();
        if (nameTok >= 2 && isPunctSeq(toks, nameTok - 2, "::") &&
            h.idents.size() >= 2) {
            // Out-of-line definition: the class (or namespace) is the
            // identifier before the final "::".
            out.scopes[(size_t)fn].qualifier =
                toks[h.idents[h.idents.size() - 2]].text;
        } else {
            // Inline member: the nearest enclosing class body, if the
            // function sits directly inside one.
            for (int s = scope; s >= 0;
                 s = out.scopes[(size_t)s].parent) {
                const Scope &sc = out.scopes[(size_t)s];
                if (sc.kind == Scope::Kind::Function ||
                    sc.kind == Scope::Kind::Lambda) {
                    break;
                }
                if (sc.kind == Scope::Kind::Block && sc.classBody) {
                    out.scopes[(size_t)fn].qualifier = sc.name;
                    break;
                }
            }
        }
        parseParams(paren + 1, pastParams - 1, fn);
        // Member initializers may construct lambdas too.
        walkRegionForLambdas(pastParams, j, fn);
        size_t bodyEnd = matchForward(j, "{", "}") - 1;
        out.scopes[(size_t)fn].bodyBegin = j + 1;
        out.scopes[(size_t)fn].bodyEnd = bodyEnd;
        parseStmts(j + 1, bodyEnd, fn);
        return bodyEnd + 1;
    }

    /** Parse lambdas appearing anywhere in [b, e) into @p scope. */
    void
    walkRegionForLambdas(size_t b, size_t e, int scope)
    {
        for (size_t i = b; i < e;) {
            if (isLambdaIntro(i))
                i = parseLambda(i, e, scope, std::string());
            else
                ++i;
        }
    }

    /**
     * Parse the lambda whose intro '[' sits at @p i. @return index
     * past the lambda (past its body, or past the capture list when
     * malformed).
     */
    size_t
    parseLambda(size_t i, size_t end, int scope,
                const std::string &bindName)
    {
        int lam = addScope(Scope::Kind::Lambda, scope, toks[i].line);
        out.scopes[(size_t)lam].name = bindName;
        size_t pastCaps = matchForward(i, "[", "]");
        parseCaptures(i + 1, pastCaps - 1, lam);
        size_t j = pastCaps;
        if (is(j, "(")) {
            size_t pastParams = matchForward(j, "(", ")");
            parseParams(j + 1, pastParams - 1, lam);
            j = pastParams;
        }
        // mutable / noexcept(...) / -> ret — up to the body.
        while (j < end && !toks[j].is("{")) {
            if (toks[j].is(";") || toks[j].is(")") || toks[j].is(","))
                return j; // not a lambda body after all
            if (toks[j].is("("))
                j = matchForward(j, "(", ")");
            else
                ++j;
        }
        if (j >= end)
            return end;
        size_t bodyEnd = matchForward(j, "{", "}") - 1;
        out.scopes[(size_t)lam].bodyBegin = j + 1;
        out.scopes[(size_t)lam].bodyEnd = bodyEnd;
        parseStmts(j + 1, bodyEnd, lam);
        return bodyEnd + 1;
    }

    /** Parse one capture list ([b, e) excludes the brackets).
     *  Init-capture expressions can contain lambdas, which grows the
     *  scope vector — the lambda's scope is re-fetched each time. */
    void
    parseCaptures(size_t b, size_t e, int lam)
    {
        auto s = [&]() -> Scope & { return out.scopes[(size_t)lam]; };
        size_t i = b;
        while (i < e) {
            // One entry: up to the next top-level ','.
            size_t cEnd = i;
            int depth = 0;
            while (cEnd < e) {
                const Token &t = toks[cEnd];
                if (t.is("(") || t.is("[") || t.is("{"))
                    ++depth;
                else if (t.is(")") || t.is("]") || t.is("}"))
                    --depth;
                else if (t.is(",") && depth == 0)
                    break;
                ++cEnd;
            }
            size_t k = i;
            bool byRef = false;
            if (is(k, "&") && (k + 1 >= cEnd || isIdent(k + 1))) {
                byRef = true;
                ++k;
            }
            if (k >= cEnd) {
                if (byRef)
                    s().hasDefaultRefCapture = true;
            } else if (is(k, "=") && k + 1 >= cEnd) {
                s().hasDefaultCopyCapture = true;
            } else if (is(k, "*") && isIdent(k + 1, "this")) {
                s().captures.push_back(
                    {"this", false, false, toks[k].line});
            } else if (isIdent(k)) {
                Capture c;
                c.name = toks[k].text;
                c.byRef = byRef || c.name == "this";
                c.line = toks[k].line;
                c.isInit = is(k + 1, "=") && !is(k + 2, "=");
                s().captures.push_back(c);
                if (c.isInit) {
                    // Init-captures introduce a lambda-local name; a
                    // by-ref one aliases outer state.
                    HeadInfo h;
                    h.sawAmp = byRef;
                    VarDecl &d = addDecl(lam, h, k, false, false, -1);
                    d.initBegin = k + 2;
                    d.initEnd = cEnd;
                    walkRegionForLambdas(k + 2, cEnd, lam);
                }
            }
            i = cEnd + 1;
        }
    }

    // ---- statements -------------------------------------------------

    void
    parseStmts(size_t b, size_t e, int scope)
    {
        size_t i = b;
        while (i < e) {
            size_t next = parseOneStmt(i, e, scope);
            i = next > i ? next : i + 1; // always make progress
        }
    }

    /** Skip an expression statement, catching embedded lambdas. */
    size_t
    skipExprStmt(size_t i, size_t e, int scope)
    {
        size_t j = walkExpr(i, e, scope, std::string());
        if (j < e && (toks[j].is(";") || toks[j].is(",")))
            return j + 1;
        return j;
    }

    size_t
    parseOneStmt(size_t i, size_t e, int scope)
    {
        const Token &t = toks[i];

        if (t.is(";"))
            return i + 1;
        if (t.is("}")) // stray closer: tolerate and move on
            return i + 1;
        if (t.is("{")) {
            size_t past = matchForward(i, "{", "}");
            int blk = addScope(Scope::Kind::Block, scope, t.line);
            out.scopes[(size_t)blk].bodyBegin = i + 1;
            out.scopes[(size_t)blk].bodyEnd = past - 1;
            parseStmts(i + 1, past - 1, blk);
            return past;
        }
        if (is(i, "[") && is(i + 1, "[")) // [[attribute]]
            return matchForward(i, "[", "]");
        if (isLambdaIntro(i)) // immediately-invoked lambda statement
            return skipExprStmt(i, e, scope);

        if (t.kind == Token::Kind::Identifier) {
            const std::string &kw = t.text;
            if (kw == "for")
                return parseFor(i, e, scope);
            if (kw == "while" || kw == "if" || kw == "switch")
                return parseCond(i, e, scope);
            if (kw == "else")
                return parseOneStmt(i + 1, e, scope);
            if (kw == "do") {
                size_t j = parseOneStmt(i + 1, e, scope);
                // trailing: while ( ... ) ;
                if (isIdent(j, "while") && is(j + 1, "("))
                    j = matchForward(j + 1, "(", ")");
                if (is(j, ";"))
                    ++j;
                return j;
            }
            if (kw == "namespace") {
                size_t j = i + 1;
                // Collect the (possibly nested, possibly empty) name
                // for the namespace path carried by Function scopes.
                std::vector<std::string> segs;
                while (j < e && !toks[j].is("{") && !toks[j].is(";")) {
                    if (isIdent(j) && !toks[j].isIdent("inline"))
                        segs.push_back(toks[j].text);
                    ++j;
                }
                if (is(j, ";"))
                    return j + 1;
                if (j >= e)
                    return e;
                if (segs.empty())
                    segs.push_back(std::string()); // anonymous
                // Transparent for lookup purposes: recurse in place.
                size_t past = matchForward(j, "{", "}");
                for (const std::string &s : segs)
                    nsStack.push_back(s);
                parseStmts(j + 1, past - 1, scope);
                nsStack.resize(nsStack.size() - segs.size());
                return past;
            }
            if (kw == "struct" || kw == "class" || kw == "union" ||
                kw == "enum") {
                // Skip to the body (past any base list) or to ';'.
                size_t j = i + 1;
                while (j < e && !toks[j].is("{") && !toks[j].is(";") &&
                       !toks[j].is("=")) {
                    if (toks[j].is("<"))
                        j = std::max(matchTemplateArgs(j), j + 1);
                    else
                        ++j;
                }
                if (j >= e || toks[j].is(";"))
                    return j + 1;
                if (toks[j].is("=")) // "using X = struct {...}" tail
                    return skipExprStmt(j, e, scope);
                size_t past = matchForward(j, "{", "}");
                int blk = addScope(Scope::Kind::Block, scope, t.line);
                out.scopes[(size_t)blk].bodyBegin = j + 1;
                out.scopes[(size_t)blk].bodyEnd = past - 1;
                if (kw != "enum") {
                    // Record the class name so member functions carry
                    // it as their qualifier: last identifier before
                    // the base-clause ':' (or the body), skipping
                    // "final" and attribute-ish tokens.
                    out.scopes[(size_t)blk].classBody = true;
                    std::string cls;
                    for (size_t q = i + 1; q < j; ++q) {
                        if (toks[q].is(":") &&
                            !isPunctSeq(toks, q, "::") &&
                            !(q > 0 && isPunctSeq(toks, q - 1, "::"))) {
                            break;
                        }
                        if (toks[q].is("("))
                            q = matchForward(q, "(", ")") - 1;
                        else if (isIdent(q) &&
                                 !toks[q].isIdent("final") &&
                                 !toks[q].isIdent("alignas"))
                            cls = toks[q].text;
                    }
                    out.scopes[(size_t)blk].name = cls;
                }
                parseStmts(j + 1, past - 1, blk);
                // "struct X { ... } x;" — skip the trailer.
                while (past < e && !toks[past].is(";"))
                    ++past;
                return past + 1;
            }
            if (kw == "template") {
                size_t j = i + 1;
                if (is(j, "<")) {
                    size_t past = matchTemplateArgs(j);
                    j = past ? past : j + 1;
                }
                return parseOneStmt(j, e, scope);
            }
            if (kw == "public" || kw == "private" ||
                kw == "protected") {
                size_t j = i + 1;
                return is(j, ":") ? j + 1 : j;
            }
            if (isControlKeyword(kw))
                return skipExprStmt(i, e, scope);

            size_t past = tryDecl(i, e, scope, false);
            if (past)
                return past;
            return skipExprStmt(i, e, scope);
        }

        if (t.is("~") && isIdent(i + 1) && is(i + 2, "(")) {
            // Destructor definition: reuse the function machinery by
            // faking a head whose name is the identifier.
            HeadInfo h;
            h.idents.push_back(i + 1);
            h.stop = i + 2;
            size_t past = tryFunction(i, e, scope, h);
            if (past)
                return past;
        }
        return skipExprStmt(i, e, scope);
    }

    size_t
    parseFor(size_t i, size_t e, int scope)
    {
        size_t paren = i + 1;
        if (!is(paren, "("))
            return skipExprStmt(i, e, scope);
        size_t pastParen = matchForward(paren, "(", ")");
        int blk = addScope(Scope::Kind::Block, scope, toks[i].line);
        out.scopes[(size_t)blk].bodyBegin = paren + 1;

        // Range-for has a top-level ':' and no ';'; a classic for has
        // an init section up to the first ';'.
        size_t colon = 0, semi = 0;
        int depth = 0;
        for (size_t j = paren + 1; j + 1 < pastParen; ++j) {
            const Token &t = toks[j];
            if (t.is("(") || t.is("[") || t.is("{") || t.is("<"))
                ++depth;
            else if (t.is(")") || t.is("]") || t.is("}") || t.is(">"))
                --depth;
            else if (depth == 0 && t.is(";") && !semi)
                semi = j;
            else if (depth == 0 && t.is(":") && !colon &&
                     !isPunctSeq(toks, j, "::") &&
                     !(j > 0 && isPunctSeq(toks, j - 1, "::")))
                colon = j;
        }
        if (semi)
            tryDecl(paren + 1, semi + 1, blk, true);
        else if (colon)
            parseRangeForDecl(paren + 1, colon, blk);

        size_t bodyStart = pastParen;
        size_t past;
        if (is(bodyStart, "{")) {
            past = matchForward(bodyStart, "{", "}");
            out.scopes[(size_t)blk].bodyEnd = past - 1;
            parseStmts(bodyStart + 1, past - 1, blk);
        } else {
            past = parseOneStmt(bodyStart, e, blk);
            out.scopes[(size_t)blk].bodyEnd = past;
        }
        return past;
    }

    /** "Type name : range" — register name as an induction variable. */
    void
    parseRangeForDecl(size_t b, size_t colon, int blk)
    {
        HeadInfo h = scanHead(b, colon);
        if (h.idents.empty())
            return;
        size_t nameTok = h.idents.back();
        if (!isReservedName(toks[nameTok].text))
            addDecl(blk, h, nameTok, true, false, -1);
    }

    size_t
    parseCond(size_t i, size_t e, int scope)
    {
        size_t paren = i + 1;
        while (isIdent(paren, "constexpr")) // if constexpr
            ++paren;
        if (!is(paren, "("))
            return skipExprStmt(i, e, scope);
        size_t pastParen = matchForward(paren, "(", ")");
        int blk = addScope(Scope::Kind::Block, scope, toks[i].line);
        out.scopes[(size_t)blk].bodyBegin = paren + 1;
        // "if (auto x = f())" style declarations resolve in the block.
        tryDecl(paren + 1, pastParen, blk, false);
        walkRegionForLambdas(paren + 1, pastParen - 1, blk);
        size_t past;
        if (is(pastParen, "{")) {
            past = matchForward(pastParen, "{", "}");
            out.scopes[(size_t)blk].bodyEnd = past - 1;
            parseStmts(pastParen + 1, past - 1, blk);
        } else {
            past = parseOneStmt(pastParen, e, blk);
            out.scopes[(size_t)blk].bodyEnd = past;
        }
        return past;
    }
};

} // namespace

bool
isPunctSeq(const std::vector<Token> &toks, size_t i, const char *seq)
{
    for (size_t k = 0; seq[k]; ++k) {
        if (i + k >= toks.size())
            return false;
        const Token &t = toks[i + k];
        if (t.kind != Token::Kind::Punct || t.text.size() != 1 ||
            t.text[0] != seq[k]) {
            return false;
        }
        if (k > 0 && (t.line != toks[i].line ||
                      t.col != toks[i].col + (int)k)) {
            return false;
        }
    }
    return true;
}

int
FileScopes::enclosing(size_t tok) const
{
    int best = 0;
    size_t bestBegin = 0;
    for (size_t s = 1; s < scopes.size(); ++s) {
        const Scope &sc = scopes[s];
        if (sc.bodyBegin <= tok && tok < sc.bodyEnd &&
            sc.bodyBegin >= bestBegin) {
            best = (int)s;
            bestBegin = sc.bodyBegin;
        }
    }
    return best;
}

const VarDecl *
FileScopes::resolve(int from, const std::string &name, size_t beforeTok,
                    int *foundScope) const
{
    for (int s = from; s >= 0; s = scopes[(size_t)s].parent) {
        const Scope &sc = scopes[(size_t)s];
        for (auto it = sc.decls.rbegin(); it != sc.decls.rend(); ++it) {
            if (it->name == name && it->tok < beforeTok) {
                if (foundScope)
                    *foundScope = s;
                return &*it;
            }
        }
    }
    if (foundScope)
        *foundScope = -1;
    return nullptr;
}

int
FileScopes::lambdaByName(int from, const std::string &name) const
{
    if (name.empty())
        return -1;
    // The binding must be visible from 'from': the lambda's parent is
    // 'from' itself or one of its ancestors.
    for (int s = from; s >= 0; s = scopes[(size_t)s].parent) {
        for (int child : scopes[(size_t)s].children) {
            const Scope &c = scopes[(size_t)child];
            if (c.kind == Scope::Kind::Lambda && c.name == name)
                return child;
        }
    }
    return -1;
}

bool
FileScopes::within(int scope, int ancestor) const
{
    for (int s = scope; s >= 0; s = scopes[(size_t)s].parent) {
        if (s == ancestor)
            return true;
    }
    return false;
}

FileScopes
parseScopes(const LexResult &lex)
{
    Parser p(lex);
    int file = p.addScope(Scope::Kind::File, -1, 1);
    p.out.scopes[(size_t)file].bodyBegin = 0;
    p.out.scopes[(size_t)file].bodyEnd = lex.tokens.size();
    p.parseStmts(0, lex.tokens.size(), file);
    return std::move(p.out);
}

} // namespace ealint
