/**
 * @file
 * Declaration parser for the edgeadapt static analyzer: the semantic
 * layer between the token stream (lexer.hh) and the semantic passes.
 * From one file's tokens it recovers a scope tree — functions, lambda
 * expressions with their capture lists and parameters, and plain
 * blocks — plus the variables declared in each scope with the
 * qualifiers the race rules care about (const, static, atomic,
 * reference/pointer declarators, for-loop induction variables).
 *
 * Like the lexer, the parser is deliberately approximate: it does not
 * expand macros, instantiate templates, or resolve overloads, and its
 * declaration recognition is a heuristic over token shapes (two
 * identifiers at a statement head followed by '=', ';', ',', '(' or
 * '{'). It is tuned to be *conservative for the passes built on it*:
 * a missed declaration makes a variable look like a member/global (the
 * race pass then errs toward reporting), while a phantom declaration
 * would silence a finding — so the heuristics reject anything
 * ambiguous (qualified assignment targets, expression statements,
 * call syntax with a single head identifier). Out-of-line qualified
 * definitions ("Tensor Conv2d::forward(...) { ... }") do get Function
 * scopes, carrying the class in Scope::qualifier, so member bodies
 * resolve their locals and the call-graph layer can key methods by
 * class. tests/lint/test_parser.cpp pins the recovered structure over
 * the tricky cases (nested lambdas, default captures with overrides,
 * init-captures, templated functions, qualified member definitions).
 */

#ifndef EDGEADAPT_TOOLS_LINT_PARSER_HH
#define EDGEADAPT_TOOLS_LINT_PARSER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "lexer.hh"

namespace ealint {

/** One declared variable (local, parameter, or init-capture). */
struct VarDecl
{
    std::string name;
    int line = 0;
    size_t tok = 0; ///< token index of the declared name

    bool isParam = false;     ///< function/lambda parameter
    bool isInduction = false; ///< declared in a for/range-for header
    bool isStatic = false;
    bool isAtomic = false;      ///< "atomic" appears in the specifiers
    bool isThreadLocal = false; ///< "thread_local" specifier
    bool isRef = false;         ///< declarator contains '&'
    bool isPointer = false;     ///< declarator contains '*'

    /**
     * Last type-ish identifier of the declaration head ("Tensor" for
     * "const Tensor &x", "atomic" for "std::atomic<int> n"). The
     * call-graph layer resolves "x.f()" through it. Empty when the
     * head has no usable type token (init-captures, "auto").
     */
    std::string typeName;

    /**
     * Writability split for pointers: "const float *p" has a const
     * pointee but a mutable p; "float *const p" the reverse. For
     * non-pointers selfConst covers both.
     */
    bool selfConst = false;    ///< the variable itself is const
    bool pointeeConst = false; ///< what it points at is const

    /** Initializer token range [initBegin, initEnd), empty if none. */
    size_t initBegin = 0;
    size_t initEnd = 0;

    /** 0-based position for parameters (unnamed ones still count, so
     *  "(int64_t b, int64_t e, int64_t)" leaves index 2 vacant). */
    int paramIndex = -1;
};

/** One explicit entry of a lambda capture list. */
struct Capture
{
    std::string name; ///< captured/introduced name ("this" included)
    bool byRef = false;
    bool isInit = false; ///< init-capture [x = expr] / [&x = expr]
    int line = 0;
};

/** One scope: the file, a function body, a lambda, or a block. */
struct Scope
{
    enum class Kind { File, Function, Lambda, Block };

    Kind kind = Kind::Block;
    int line = 0;
    int parent = -1; ///< index into FileScopes::scopes, -1 for File

    /**
     * Token range the scope covers. For File the whole stream; for
     * functions/lambdas/blocks [bodyBegin, bodyEnd) is the body
     * between (exclusive) '{' and '}'. Loop/if blocks start at the
     * '(' of their header so induction variables resolve inside.
     */
    size_t bodyBegin = 0;
    size_t bodyEnd = 0;

    /** Function name; for a lambda, the variable it was bound to by
     *  "auto name = [...]" (empty for immediately-passed lambdas).
     *  For a class/struct/union body Block, the class name. */
    std::string name;

    /**
     * For a Function: the class it belongs to, recovered either from
     * an out-of-line qualified definition ("Tensor Conv2d::forward")
     * or from the enclosing class body for inline members. Empty for
     * free functions. Namespace-qualified out-of-line definitions
     * ("void obs::f()") put the namespace here; callers disambiguate
     * via nsPath.
     */
    std::string qualifier;

    /** For a Function: enclosing namespace path ("edgeadapt::parallel",
     *  anonymous segments spelled "(anon)"). */
    std::string nsPath;

    /** Block only: true when this is a class/struct/union body. */
    bool classBody = false;

    // Lambda-only capture information.
    bool hasDefaultRefCapture = false;  ///< [&]
    bool hasDefaultCopyCapture = false; ///< [=]
    std::vector<Capture> captures;      ///< explicit entries

    std::vector<VarDecl> decls; ///< params + directly declared vars
    std::vector<int> children;  ///< child scope indices
};

/** Scope tree of one file. scopes[0] is always the File scope. */
struct FileScopes
{
    std::vector<Scope> scopes;

    /** @return innermost scope whose body contains token @p tok. */
    int enclosing(size_t tok) const;

    /**
     * Resolve @p name looking outward from scope @p from, considering
     * only declarations at token index < @p beforeTok (no use before
     * declaration). @return the declaration and, via @p foundScope,
     * the scope holding it; nullptr when the name resolves nowhere
     * (member, global, or unparsed).
     */
    const VarDecl *resolve(int from, const std::string &name,
                           size_t beforeTok, int *foundScope) const;

    /**
     * @return index of the lambda scope bound to variable @p name
     * visible from scope @p from ("auto name = [...]"), or -1.
     */
    int lambdaByName(int from, const std::string &name) const;

    /** @return true when @p scope is @p ancestor or nested in it. */
    bool within(int scope, int ancestor) const;
};

/** Parse the scope tree of one lexed file. Never fails. */
FileScopes parseScopes(const LexResult &lex);

/**
 * @return true when tokens [i, i+strlen(seq)) spell the multi-char
 * punctuator @p seq as adjacent single-char punct tokens on one line
 * ("+=", "++", "->", "::"). The lexer emits single-character
 * punctuation; this is the shared way to see compound operators.
 */
bool isPunctSeq(const std::vector<Token> &toks, size_t i,
                const char *seq);

} // namespace ealint

#endif // EDGEADAPT_TOOLS_LINT_PARSER_HH
