/**
 * @file
 * Include-graph pass: parses #include directives across src/, builds
 * the module dependency graph, and enforces the declared layering.
 *
 * The layering (lower layer = more basic; an include may only point
 * strictly downward or stay inside its own module):
 *
 *   9  analysis
 *   8  device  profile
 *   7  adapt   compress
 *   6  train
 *   5  models  data
 *   4  nn
 *   3  tensor
 *   2  parallel
 *   1  obs
 *   0  base
 *
 * obs sits just above base because trace spans and metrics are the
 * instrumentation substrate the whole stack (tensor kernels included)
 * reports through. "parallel" is the pseudo-module
 * src/base/parallel.{hh,cc} (see srcModule()): the thread pool
 * reports through obs, and the tensor/nn kernels dispatch onto it, so
 * it slots between the two even though its files live in the base
 * directory. Edges between two modules of the same layer are errors
 * too: if such a dependency is real, the layering declaration must
 * change, visibly, in this table and in DESIGN.md.
 *
 * Cycles are detected on the full module graph (including edges that
 * are already layering violations) so a cycle is always reported as
 * such, not just as a pair of suspicious edges.
 */

#include <algorithm>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "passes.hh"

namespace ealint {

namespace fs = std::filesystem;

int
moduleLayer(const std::string &module)
{
    static const std::map<std::string, int> layers = {
        {"base", 0},     {"obs", 1},    {"parallel", 2}, {"tensor", 3},
        {"nn", 4},       {"models", 5}, {"data", 5},     {"train", 6},
        {"adapt", 7},    {"compress", 7}, {"device", 8}, {"profile", 8},
        {"analysis", 9},
    };
    auto it = layers.find(module);
    return it == layers.end() ? -1 : it->second;
}

std::string
quotedIncludeTarget(const Directive &d)
{
    if (d.name != "include" || d.rest.size() < 2 || d.rest[0] != '"')
        return "";
    size_t close = d.rest.find('"', 1);
    if (close == std::string::npos)
        return "";
    return d.rest.substr(1, close - 1);
}

namespace {

/** One module-level edge with a representative include site. */
struct Edge
{
    std::string from;
    std::string to;
    const SourceFile *site = nullptr;
    int line = 0;
};

/** @return module of a quoted include target under src/, or "". */
std::string
targetModule(const Context &ctx, const std::string &target)
{
    size_t slash = target.find('/');
    if (slash == std::string::npos || slash == 0)
        return "";
    std::error_code ec;
    if (!fs::is_regular_file(fs::path(ctx.repoRoot) / "src" / target,
                             ec)) {
        return "";
    }
    return srcModule(target);
}

/** Depth-first search for one cycle through @p module. */
bool
findCycle(const std::map<std::string, std::set<std::string>> &graph,
          const std::string &node, std::set<std::string> &visiting,
          std::set<std::string> &done, std::vector<std::string> &path)
{
    if (done.count(node))
        return false;
    if (visiting.count(node)) {
        path.push_back(node);
        return true;
    }
    visiting.insert(node);
    auto it = graph.find(node);
    if (it != graph.end()) {
        for (const std::string &next : it->second) {
            if (findCycle(graph, next, visiting, done, path)) {
                // Unwind only until the cycle's entry node is back on
                // top; nodes before it are a tail, not cycle members.
                if (path.front() != path.back() || path.size() == 1)
                    path.push_back(node);
                return true;
            }
        }
    }
    visiting.erase(node);
    done.insert(node);
    return false;
}

} // namespace

void
runIncludeGraphPass(const Context &ctx, Diagnostics &diag)
{
    std::vector<Edge> edges;
    std::map<std::string, std::set<std::string>> graph;

    for (const SourceFile &sf : ctx.files) {
        if (!sf.isSrc || sf.module.empty())
            continue;
        if (moduleLayer(sf.module) < 0) {
            diag.report(sf, 1, "layer",
                        "module src/" + sf.module +
                            "/ is not in the declared layering (add "
                            "it to moduleLayer() and DESIGN.md)");
            continue;
        }
        for (const Directive &d : sf.lex.directives) {
            std::string target = quotedIncludeTarget(d);
            if (target.empty())
                continue;
            std::string to = targetModule(ctx, target);
            if (to.empty() || to == sf.module)
                continue;
            if (graph[sf.module].insert(to).second)
                edges.push_back({sf.module, to, &sf, d.line});

            int fromLayer = moduleLayer(sf.module);
            int toLayer = moduleLayer(to);
            if (toLayer < 0) {
                diag.report(sf, d.line, "layer",
                            "include of src/" + to +
                                "/ which is not in the declared "
                                "layering");
            } else if (toLayer >= fromLayer) {
                diag.report(
                    sf, d.line, "layer",
                    "include of " + target + " reaches " +
                        (toLayer == fromLayer ? "sideways" : "upward") +
                        ": " + sf.module + " (layer " +
                        std::to_string(fromLayer) + ") -> " + to +
                        " (layer " + std::to_string(toLayer) + ")");
            }
        }
    }

    // Cycle detection over the whole module graph. Each cycle is
    // reported once, attributed to a representative include site.
    std::set<std::string> done;
    std::vector<std::string> nodes;
    for (const auto &entry : graph)
        nodes.push_back(entry.first);
    std::sort(nodes.begin(), nodes.end());
    for (const std::string &node : nodes) {
        std::set<std::string> visiting;
        std::vector<std::string> path;
        if (!findCycle(graph, node, visiting, done, path))
            continue;
        std::reverse(path.begin(), path.end());
        std::string desc;
        for (const std::string &m : path)
            desc += (desc.empty() ? "" : " -> ") + m;
        const Edge *site = nullptr;
        for (const Edge &e : edges) {
            if (e.from == path[0] && e.to == path[1]) {
                site = &e;
                break;
            }
        }
        if (site) {
            diag.report(*site->site, site->line, "layer-cycle",
                        "module cycle: " + desc);
        } else {
            diag.reportRaw("src/" + path[0], 1, "layer-cycle",
                           "module cycle: " + desc);
        }
        // One cycle per run keeps the report readable; fixing it
        // usually dissolves or reveals the rest.
        break;
    }
}

} // namespace ealint
