/**
 * @file
 * Instrumentation-coverage pass: ties the analyzer to the measurement
 * stack. The paper's per-layer breakdowns are only as trustworthy as
 * the instrumentation they are read from, so this pass mechanically
 * proves three properties over src/:
 *
 *  - trace-span:     the body of every forward()/backward() of every
 *                    nn::Module subclass (transitively) opens an
 *                    EA_TRACE_SPAN / EA_TRACE_SPAN_CAT
 *  - grad-contract:  every such backward() body states at least one
 *                    EA_CHECK* contract on its inputs/cached state
 *  - hot-alloc:      src/tensor/ kernels do not grow containers
 *                    (push_back, resize, ...) or construct
 *                    std::vector inside loops; a justified exception
 *                    carries NOLINT(hot-alloc)
 *  - untracked-alloc: src/tensor/ and src/nn/ do not allocate float
 *                    buffers outside the tracked storage path
 *                    (detail::TensorStorage / parallel scratch) that
 *                    the obs memory profiler accounts; a sanctioned
 *                    site carries NOLINT(untracked-alloc)
 *
 * Class discovery is cross-file: subclass declarations usually live
 * in headers while the method bodies live in .cc files, so the pass
 * first builds the class hierarchy over all loaded files (seeded at
 * the Module base in src/nn/module.hh) and then hunts for method
 * bodies both out-of-line (Tensor X::forward(...) { ... }) and inline
 * inside a class body.
 */

#include <map>
#include <set>
#include <string>
#include <vector>

#include "passes.hh"

namespace ealint {

namespace {

using Tokens = std::vector<Token>;

bool
isTraceMacro(const std::string &s)
{
    return s == "EA_TRACE_SPAN" || s == "EA_TRACE_SPAN_CAT";
}

bool
isCheckMacro(const std::string &s)
{
    return s == "EA_CHECK" || s == "EA_CHECK_SHAPE" ||
           s == "EA_CHECK_INDEX" || s == "EA_CHECK_FINITE" ||
           s == "EA_DCHECK" || s == "EA_DCHECK_INDEX";
}

/** @return index just past the matching closer for the opener at @p i. */
size_t
skipBalanced(const Tokens &toks, size_t i, const char *open,
             const char *close)
{
    int depth = 0;
    for (; i < toks.size(); ++i) {
        if (toks[i].is(open))
            ++depth;
        else if (toks[i].is(close) && --depth == 0)
            return i + 1;
    }
    return toks.size();
}

/** One discovered class declaration. */
struct ClassDecl
{
    std::string name;
    const SourceFile *file = nullptr;
    int line = 0;
    std::vector<std::string> bases; ///< last path component of each base
    size_t bodyBegin = 0;           ///< token index past '{'
    size_t bodyEnd = 0;             ///< token index of '}'
};

/**
 * Scan one file for class/struct declarations with a base list and a
 * body, recording base names and body token ranges.
 */
void
collectClasses(const SourceFile &sf, std::vector<ClassDecl> &out)
{
    const Tokens &toks = sf.lex.tokens;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
        const Token &t = toks[i];
        if (!t.isIdent("class") && !t.isIdent("struct"))
            continue;
        // Skip "enum class" and template parameters ("<class T>").
        if (i > 0 && (toks[i - 1].isIdent("enum") ||
                      toks[i - 1].is("<") || toks[i - 1].is(","))) {
            continue;
        }
        if (toks[i + 1].kind != Token::Kind::Identifier)
            continue;
        ClassDecl decl;
        decl.name = toks[i + 1].text;
        decl.file = &sf;
        decl.line = toks[i + 1].line;

        size_t j = i + 2;
        if (j < toks.size() && toks[j].isIdent("final"))
            ++j;
        if (j < toks.size() && toks[j].is(":")) {
            // Base list: walk qualified names up to '{'.
            std::string last;
            for (++j; j < toks.size() && !toks[j].is("{") &&
                      !toks[j].is(";");
                 ++j) {
                const Token &b = toks[j];
                if (b.kind == Token::Kind::Identifier) {
                    if (b.isIdent("public") || b.isIdent("private") ||
                        b.isIdent("protected") || b.isIdent("virtual")) {
                        continue;
                    }
                    last = b.text;
                } else if (b.is(",")) {
                    if (!last.empty())
                        decl.bases.push_back(last);
                    last.clear();
                } else if (b.is("<")) {
                    // Template base: skip its argument list.
                    j = skipBalanced(toks, j, "<", ">") - 1;
                }
            }
            if (!last.empty())
                decl.bases.push_back(last);
        }
        if (j >= toks.size() || !toks[j].is("{"))
            continue; // forward declaration
        decl.bodyBegin = j + 1;
        decl.bodyEnd = skipBalanced(toks, j, "{", "}") - 1;
        out.push_back(std::move(decl));
        // Nested classes are rare here; continuing the scan past the
        // header of this class finds them anyway.
    }
}

/** A forward()/backward() definition with a body. */
struct MethodBody
{
    const SourceFile *file = nullptr;
    int line = 0;
    std::string className;
    std::string method; ///< "forward" or "backward"
    size_t begin = 0;   ///< token index past '{'
    size_t end = 0;     ///< token index of '}'
};

/**
 * From token @p i (the method name) try to parse "(params) quals {",
 * returning true and the body range when this is a definition.
 */
bool
parseBodyAfterName(const Tokens &toks, size_t i, size_t &begin,
                   size_t &end)
{
    size_t j = i + 1;
    if (j >= toks.size() || !toks[j].is("("))
        return false;
    j = skipBalanced(toks, j, "(", ")");
    // Qualifiers between ")" and "{": const, noexcept, override,
    // final, trailing return types. "=" means "= 0;" / "= default;",
    // ";" means a plain declaration — neither has a body to check.
    for (; j < toks.size(); ++j) {
        if (toks[j].is("{")) {
            begin = j + 1;
            end = skipBalanced(toks, j, "{", "}") - 1;
            return true;
        }
        if (toks[j].is(";") || toks[j].is("="))
            return false;
    }
    return false;
}

/** Find out-of-line "X::forward(...) { ... }" definitions in @p sf. */
void
collectOutOfLineBodies(const SourceFile &sf,
                       const std::set<std::string> &classes,
                       std::vector<MethodBody> &out)
{
    const Tokens &toks = sf.lex.tokens;
    for (size_t i = 0; i + 4 < toks.size(); ++i) {
        if (toks[i].kind != Token::Kind::Identifier ||
            !classes.count(toks[i].text)) {
            continue;
        }
        if (!toks[i + 1].is(":") || !toks[i + 2].is(":"))
            continue;
        const Token &name = toks[i + 3];
        if (!name.isIdent("forward") && !name.isIdent("backward"))
            continue;
        MethodBody mb;
        if (!parseBodyAfterName(toks, i + 3, mb.begin, mb.end))
            continue;
        mb.file = &sf;
        mb.line = name.line;
        mb.className = toks[i].text;
        mb.method = name.text;
        out.push_back(mb);
    }
}

/** Find inline forward/backward bodies inside @p decl's class body. */
void
collectInlineBodies(const ClassDecl &decl, std::vector<MethodBody> &out)
{
    const Tokens &toks = decl.file->lex.tokens;
    for (size_t i = decl.bodyBegin; i < decl.bodyEnd; ++i) {
        const Token &t = toks[i];
        if (!t.isIdent("forward") && !t.isIdent("backward"))
            continue;
        // "X::forward" inside the body belongs to some other class.
        if (i >= 2 && toks[i - 1].is(":") && toks[i - 2].is(":"))
            continue;
        MethodBody mb;
        if (!parseBodyAfterName(toks, i, mb.begin, mb.end))
            continue;
        mb.file = decl.file;
        mb.line = t.line;
        mb.className = decl.name;
        mb.method = t.text;
        out.push_back(mb);
        i = mb.end;
    }
}

void
checkBody(const MethodBody &mb, Diagnostics &diag)
{
    const Tokens &toks = mb.file->lex.tokens;
    bool hasSpan = false;
    bool hasCheck = false;
    for (size_t i = mb.begin; i < mb.end; ++i) {
        if (toks[i].kind != Token::Kind::Identifier)
            continue;
        hasSpan = hasSpan || isTraceMacro(toks[i].text);
        hasCheck = hasCheck || isCheckMacro(toks[i].text);
    }
    std::string who = mb.className + "::" + mb.method;
    if (!hasSpan) {
        diag.report(*mb.file, mb.line, "trace-span",
                    who + " has no EA_TRACE_SPAN — the per-layer "
                          "breakdowns cannot see this module");
    }
    if (mb.method == "backward" && !hasCheck) {
        diag.report(*mb.file, mb.line, "grad-contract",
                    who + " states no EA_CHECK* contract on its "
                          "gradient/cached state");
    }
}

/** Container-growth calls that allocate on the hot path. */
bool
isGrowthCall(const std::string &s)
{
    return s == "push_back" || s == "emplace_back" || s == "resize" ||
           s == "reserve" || s == "insert" || s == "emplace" ||
           s == "assign" || s == "append";
}

void
checkHotAlloc(const SourceFile &sf, Diagnostics &diag)
{
    const Tokens &toks = sf.lex.tokens;
    // Loop-body tracking: a brace stack with an is-loop flag, plus a
    // span for braceless bodies ("for (...) x.push_back(y);").
    std::vector<bool> braceIsLoop;
    int loopDepth = 0;
    size_t bracelessUntil = 0; // token index bound, 0 = inactive
    bool pendingLoop = false;

    auto inLoop = [&](size_t i) {
        return loopDepth > 0 || (bracelessUntil && i < bracelessUntil);
    };

    for (size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (bracelessUntil && i >= bracelessUntil)
            bracelessUntil = 0;

        if (t.isIdent("for") || t.isIdent("while")) {
            size_t j = i + 1;
            if (j < toks.size() && toks[j].is("("))
                j = skipBalanced(toks, j, "(", ")");
            if (j < toks.size() && toks[j].is("{")) {
                pendingLoop = true;
            } else {
                // Braceless body: one statement, up to its ';'.
                size_t k = j;
                while (k < toks.size() && !toks[k].is(";")) {
                    if (toks[k].is("("))
                        k = skipBalanced(toks, k, "(", ")");
                    else
                        ++k;
                }
                if (k > bracelessUntil)
                    bracelessUntil = k;
            }
            i = j - 1;
            continue;
        }
        if (t.isIdent("do") && i + 1 < toks.size() &&
            toks[i + 1].is("{")) {
            pendingLoop = true;
            continue;
        }
        if (t.is("{")) {
            braceIsLoop.push_back(pendingLoop);
            if (pendingLoop)
                ++loopDepth;
            pendingLoop = false;
            continue;
        }
        if (t.is("}")) {
            if (!braceIsLoop.empty()) {
                if (braceIsLoop.back())
                    --loopDepth;
                braceIsLoop.pop_back();
            }
            continue;
        }
        if (!inLoop(i) || t.kind != Token::Kind::Identifier)
            continue;

        bool memberCall = i > 0 && (toks[i - 1].is(".") ||
                                    (i > 1 && toks[i - 1].is(">") &&
                                     toks[i - 2].is("-")));
        if (isGrowthCall(t.text) && memberCall && i + 1 < toks.size() &&
            toks[i + 1].is("(")) {
            diag.report(sf, t.line, "hot-alloc",
                        t.text + "() inside a loop in a src/tensor/ "
                                 "kernel (hoist the allocation or "
                                 "justify with NOLINT(hot-alloc))");
        }
        if (t.isIdent("vector") && i >= 2 && toks[i - 1].is(":") &&
            toks[i - 2].is(":") && i >= 3 && toks[i - 3].isIdent("std")) {
            diag.report(sf, t.line, "hot-alloc",
                        "std::vector constructed inside a loop in a "
                        "src/tensor/ kernel (hoist it or justify "
                        "with NOLINT(hot-alloc))");
        }
    }
}

/** Raw heap-allocation calls the memory profiler cannot see. */
bool
isRawAllocCall(const std::string &s)
{
    return s == "malloc" || s == "calloc" || s == "realloc" ||
           s == "aligned_alloc";
}

/**
 * Flag float-buffer allocations that bypass the tracked storage path
 * (detail::TensorStorage / parallel scratch): raw malloc-family
 * calls, std::vector<float> object declarations, and
 * make_unique*<float[]> calls. References, pointers, and
 * template-argument spellings of vector<float> do not allocate and
 * are left alone.
 */
void
checkUntrackedAlloc(const SourceFile &sf, Diagnostics &diag)
{
    const Tokens &toks = sf.lex.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != Token::Kind::Identifier)
            continue;
        if (isRawAllocCall(t.text) && i + 1 < toks.size() &&
            toks[i + 1].is("(")) {
            diag.report(sf, t.line, "untracked-alloc",
                        t.text + "() bypasses the tracked allocation "
                                 "path (use Tensor storage or "
                                 "parallel::scratch, or justify with "
                                 "NOLINT(untracked-alloc))");
            continue;
        }

        bool isVec = t.isIdent("vector") && i >= 3 &&
                     toks[i - 1].is(":") && toks[i - 2].is(":") &&
                     toks[i - 3].isIdent("std");
        bool isMakeUnique = t.text == "make_unique" ||
                            t.text == "make_unique_for_overwrite";
        if (!isVec && !isMakeUnique)
            continue;
        if (i + 1 >= toks.size() || !toks[i + 1].is("<"))
            continue;
        size_t past = skipBalanced(toks, i + 1, "<", ">");
        bool floatElem = false;
        for (size_t j = i + 2; j + 1 < past; ++j) {
            if (toks[j].isIdent("float") || toks[j].isIdent("double")) {
                floatElem = true;
                break;
            }
        }
        if (!floatElem || past >= toks.size())
            continue;
        // A declaration/construction follows the '>' with a name, a
        // call, or a brace init; '&'/'*'/'>'/','/')'/';' mean a
        // reference, pointer, or pure type mention instead.
        const Token &next = toks[past];
        bool allocates = next.kind == Token::Kind::Identifier ||
                         next.is("(") || next.is("{");
        if (isVec && !allocates)
            continue;
        const char *what =
            isVec ? "std::vector<float> buffer"
                  : "make_unique<float[]> buffer";
        diag.report(sf, t.line, "untracked-alloc",
                    std::string(what) +
                        " invisible to the memory profiler (use "
                        "Tensor storage or parallel::scratch, or "
                        "justify with NOLINT(untracked-alloc))");
    }
}

/**
 * @return whether @p name is a lowercase dotted metric identifier:
 * two or more non-empty [a-z0-9_] segments joined by single dots.
 */
bool
isMetricName(const std::string &name)
{
    bool sawDot = false;
    bool segEmpty = true;
    for (char ch : name) {
        if (ch == '.') {
            if (segEmpty)
                return false;
            sawDot = true;
            segEmpty = true;
        } else if ((ch >= 'a' && ch <= 'z') ||
                   (ch >= '0' && ch <= '9') || ch == '_') {
            segEmpty = false;
        } else {
            return false;
        }
    }
    return sawDot && !segEmpty;
}

/**
 * Enforce the metric-name convention at every counter()/gauge()/
 * histogram() member-call site with a literal name. Namespaced dotted
 * names keep the registry snapshot (and everything downstream of it:
 * bench reports, telemetry lines, post-mortem dumps) greppable and
 * collision-free across modules. Computed names are resolved at run
 * time and are left to review.
 */
void
checkMetricName(const SourceFile &sf, Diagnostics &diag)
{
    const Tokens &toks = sf.lex.tokens;
    for (size_t i = 1; i + 2 < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != Token::Kind::Identifier)
            continue;
        if (!t.isIdent("counter") && !t.isIdent("gauge") &&
            !t.isIdent("histogram")) {
            continue;
        }
        bool memberCall = toks[i - 1].is(".") ||
                          (i > 1 && toks[i - 1].is(">") &&
                           toks[i - 2].is("-"));
        if (!memberCall || !toks[i + 1].is("("))
            continue;
        const Token &arg = toks[i + 2];
        if (arg.kind != Token::Kind::String)
            continue;
        if (isMetricName(arg.text))
            continue;
        diag.report(sf, arg.line, "metric-name",
                    "metric name \"" + arg.text +
                        "\" is not a lowercase dotted identifier "
                        "(want \"module.metric\" like "
                        "\"adapt.entropy\")");
    }
}

} // namespace

void
runInstrumentationPass(const Context &ctx, Diagnostics &diag)
{
    // Tracked-allocation discipline for the layers the profiler
    // accounts; independent of the Module hierarchy below.
    for (const SourceFile &sf : ctx.files) {
        if (sf.rel.rfind("src/tensor/", 0) == 0 ||
            sf.rel.rfind("src/nn/", 0) == 0) {
            checkUntrackedAlloc(sf, diag);
        }
    }

    // Metric-name convention everywhere a registry instrument is
    // created (src, tests, benches, tools alike).
    for (const SourceFile &sf : ctx.files)
        checkMetricName(sf, diag);

    // 1. Class hierarchy over every loaded file, seeded at the Module
    //    base class declared in src/nn/module.hh.
    std::vector<ClassDecl> classes;
    for (const SourceFile &sf : ctx.files) {
        if (sf.isSrc)
            collectClasses(sf, classes);
    }
    std::set<std::string> moduleClasses;
    for (const ClassDecl &c : classes) {
        if (c.name == "Module" && c.file->rel == "src/nn/module.hh")
            moduleClasses.insert(c.name);
    }
    if (moduleClasses.empty())
        return; // core not in the linted set; nothing to prove
    for (bool changed = true; changed;) {
        changed = false;
        for (const ClassDecl &c : classes) {
            if (moduleClasses.count(c.name))
                continue;
            for (const std::string &base : c.bases) {
                if (moduleClasses.count(base)) {
                    moduleClasses.insert(c.name);
                    changed = true;
                    break;
                }
            }
        }
    }
    moduleClasses.erase("Module"); // the abstract base has no bodies

    // 2. Method bodies, both spellings.
    std::vector<MethodBody> bodies;
    for (const SourceFile &sf : ctx.files) {
        if (sf.isSrc)
            collectOutOfLineBodies(sf, moduleClasses, bodies);
    }
    for (const ClassDecl &c : classes) {
        if (moduleClasses.count(c.name))
            collectInlineBodies(c, bodies);
    }
    for (const MethodBody &mb : bodies)
        checkBody(mb, diag);

    // 3. Hot-path allocation discipline in the tensor kernels.
    for (const SourceFile &sf : ctx.files) {
        if (sf.rel.rfind("src/tensor/", 0) == 0)
            checkHotAlloc(sf, diag);
    }
}

} // namespace ealint
