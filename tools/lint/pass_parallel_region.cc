/**
 * @file
 * Parallel-region pass: static race detection for parallelFor call
 * sites, built on the declaration parser (parser.hh). The dev
 * container has one core, so TSan passes without ever exercising a
 * real interleaving — these rules are the machine-checked concurrency
 * reviewer that dynamic analysis cannot be here.
 *
 * For every parallelFor(begin, end, grain, body) call site whose body
 * is a lambda (inline or bound to a local via "auto name = [...]"),
 * four rules run over the lambda:
 *
 *  - parallel-capture: a write to state captured by reference ([&] or
 *    a named &x) — or to unresolved member/global state — races across
 *    chunks unless the written element is indexed by a lambda
 *    parameter or a loop induction variable declared inside the
 *    lambda (chunk-disjoint by the parallelFor contract). const,
 *    atomic, and by-value captures are safe; everything else needs a
 *    NOLINT(parallel-capture) justification.
 *  - parallel-scratch-escape: scratch() buffers are per-thread;
 *    storing one outside the lambda publishes a pointer that is
 *    invalid (or racy) on every other thread.
 *  - parallel-reentrant: calls to known non-reentrant libc functions,
 *    mutable function-local statics declared in the region, and calls
 *    to same-file functions that keep mutable static state.
 *  - parallel-reduction-order: per-chunk partial buffers (recognized
 *    by their chunk-parameter indexing) must fold into the final
 *    accumulator in ascending chunk order — the determinism invariant
 *    of base/parallel.hh. A fold loop over a partial that does not
 *    walk ascending is an error.
 *
 * Call sites whose (begin, end, grain) are all literal and produce at
 * most one chunk run inline on the caller and are skipped entirely —
 * single-chunk "parallelism" cannot race.
 */

#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "parser.hh"
#include "passes.hh"

namespace ealint {

namespace {

/** libc functions with hidden global state. */
bool
isNonReentrantLibc(const std::string &name)
{
    return name == "rand" || name == "srand" || name == "strtok" ||
           name == "asctime" || name == "ctime" || name == "gmtime" ||
           name == "localtime" || name == "setlocale" ||
           name == "tmpnam";
}

/** Per-file analysis state shared by the rule checks. */
struct FileState
{
    const SourceFile *sf = nullptr;
    FileScopes scopes;

    /** Function name -> line of its first mutable static local. */
    std::map<std::string, int> staticStateFns;
};

/** One write's left-hand side, reduced to its postfix chain. */
struct Lhs
{
    size_t baseTok = (size_t)-1; ///< token index of the base name
    bool deref = false;          ///< "*p = ..." form
    bool hasSubscript = false;
    /** Token ranges [first, last) of every subscript in the chain. */
    std::vector<std::pair<size_t, size_t>> subscripts;

    bool valid() const { return baseTok != (size_t)-1; }
};

size_t
matchForward(const std::vector<Token> &toks, size_t i, const char *open,
             const char *close)
{
    int depth = 0;
    for (; i < toks.size(); ++i) {
        if (toks[i].is(open))
            ++depth;
        else if (toks[i].is(close) && --depth == 0)
            return i + 1;
    }
    return toks.size();
}

/** Index of the '[' / '(' matching the closer at @p i, or npos. */
size_t
matchBackward(const std::vector<Token> &toks, size_t i, const char *open,
              const char *close, size_t floor)
{
    int depth = 0;
    for (size_t k = i + 1; k-- > floor;) {
        if (toks[k].is(close))
            ++depth;
        else if (toks[k].is(open) && --depth == 0)
            return k;
    }
    return (size_t)-1;
}

/**
 * Walk the postfix chain ending at token @p e backward to its base
 * identifier: ident ( '.' | '->' | '::' | [expr] | (args) )* — e.g.
 * "gamma_.grad.data()[c]" reduces to base gamma_ with one subscript.
 */
Lhs
chainBackward(const std::vector<Token> &toks, size_t e, size_t floor)
{
    Lhs lhs;
    size_t k = e;
    while (k != (size_t)-1 && k >= floor) {
        const Token &t = toks[k];
        if (t.is("]")) {
            size_t open = matchBackward(toks, k, "[", "]", floor);
            if (open == (size_t)-1)
                return Lhs{};
            lhs.hasSubscript = true;
            lhs.subscripts.emplace_back(open + 1, k);
            k = open - 1;
            continue;
        }
        if (t.is(")")) {
            size_t open = matchBackward(toks, k, "(", ")", floor);
            if (open == (size_t)-1)
                return Lhs{};
            k = open - 1;
            continue;
        }
        if (t.kind == Token::Kind::Identifier) {
            lhs.baseTok = k;
            if (k >= floor + 1 && toks[k - 1].is(".")) {
                k -= 2;
                continue;
            }
            if (k >= floor + 2 && (isPunctSeq(toks, k - 2, "->") ||
                                   isPunctSeq(toks, k - 2, "::"))) {
                k -= 3;
                continue;
            }
            // Unary '*' in front of the whole chain: a deref write.
            if (k >= floor + 1 && toks[k - 1].is("*")) {
                const Token *prev = k >= floor + 2 ? &toks[k - 2]
                                                   : nullptr;
                bool unary = !prev ||
                             (prev->kind == Token::Kind::Punct &&
                              !prev->is(")") && !prev->is("]"));
                if (unary)
                    lhs.deref = true;
            }
            return lhs;
        }
        return Lhs{};
    }
    return Lhs{};
}

/**
 * Walk the postfix chain starting at identifier @p b forward (for
 * prefix ++/-- operands). @return the chain and, via @p pastEnd, the
 * index just past it.
 */
Lhs
chainForward(const std::vector<Token> &toks, size_t b, size_t limit,
             size_t *pastEnd)
{
    Lhs lhs;
    if (b >= limit || toks[b].kind != Token::Kind::Identifier)
        return lhs;
    lhs.baseTok = b;
    size_t k = b + 1;
    while (k < limit) {
        if (toks[k].is(".")) {
            k += 2;
        } else if (isPunctSeq(toks, k, "->") ||
                   isPunctSeq(toks, k, "::")) {
            k += 3;
        } else if (toks[k].is("[")) {
            size_t past = matchForward(toks, k, "[", "]");
            lhs.hasSubscript = true;
            lhs.subscripts.emplace_back(k + 1, past - 1);
            k = past;
        } else if (toks[k].is("(")) {
            k = matchForward(toks, k, "(", ")");
        } else {
            break;
        }
    }
    *pastEnd = k;
    return lhs;
}

/**
 * @return true when some identifier in a subscript of @p lhs resolves
 * to a parameter of the region lambda or to a loop induction variable
 * declared inside it — the write then touches a chunk-disjoint
 * element by the parallelFor partition contract.
 */
bool
subscriptIsChunkDisjoint(const FileState &fs, const Lhs &lhs, int region)
{
    const auto &toks = fs.sf->lex.tokens;
    for (const auto &sub : lhs.subscripts) {
        for (size_t k = sub.first; k < sub.second; ++k) {
            if (toks[k].kind != Token::Kind::Identifier)
                continue;
            int ds = -1;
            const VarDecl *d = fs.scopes.resolve(
                fs.scopes.enclosing(k), toks[k].text, k + 1, &ds);
            if (!d)
                continue;
            if (d->isParam && ds == region)
                return true;
            if (d->isInduction && fs.scopes.within(ds, region))
                return true;
        }
    }
    return false;
}

/**
 * @return true when the path from the write's scope @p ws out to the
 * declaring scope @p ds crosses only by-reference captures — i.e. the
 * write lands on the original object, not a lambda-local copy.
 */
bool
capturedByReference(const FileState &fs, int ws, int ds,
                    const std::string &name)
{
    for (int s = ws; s >= 0 && s != ds;
         s = fs.scopes.scopes[(size_t)s].parent) {
        const Scope &sc = fs.scopes.scopes[(size_t)s];
        if (sc.kind != Scope::Kind::Lambda)
            continue;
        bool explicitRef = false, explicitCopy = false;
        for (const Capture &c : sc.captures) {
            if (c.name == name)
                (c.byRef ? explicitRef : explicitCopy) = true;
        }
        if (explicitCopy)
            return false;
        if (explicitRef)
            continue;
        if (sc.hasDefaultCopyCapture)
            return false;
        // Default [&], or nothing: treat as by reference (members
        // and globals reach in regardless of the capture list).
    }
    return true;
}

/** Statement end: the next ';' at the current nesting depth. */
size_t
statementEnd(const std::vector<Token> &toks, size_t i, size_t limit)
{
    int depth = 0;
    for (; i < limit; ++i) {
        const Token &t = toks[i];
        if (t.is("(") || t.is("[") || t.is("{"))
            ++depth;
        else if (t.is(")") || t.is("]") || t.is("}"))
            --depth;
        else if (t.is(";") && depth <= 0)
            return i;
    }
    return limit;
}

/**
 * @return true when evaluating [b, e) can yield a scratch() POINTER —
 * a direct call, or a local whose initializer (transitively, a few
 * hops) did, so laundering through "float *p = scratch(...); g = p;"
 * still counts. A subscripted use (tile[j]) loads an element value,
 * not the pointer, and does not count as an escape.
 */
bool
rangeHoldsScratch(const FileState &fs, size_t b, size_t e, int depth)
{
    const auto &toks = fs.sf->lex.tokens;
    for (size_t k = b; k < e; ++k) {
        if (toks[k].kind != Token::Kind::Identifier)
            continue;
        bool subscripted =
            k + 1 < toks.size() && toks[k + 1].is("[");
        if (toks[k].isIdent("scratch") && k + 1 < e &&
            toks[k + 1].is("(")) {
            size_t past = matchForward(toks, k + 1, "(", ")");
            if (!(past < e && toks[past].is("[")))
                return true;
            k = past;
            continue;
        }
        if (subscripted || depth >= 4)
            continue;
        int ds = -1;
        const VarDecl *d = fs.scopes.resolve(
            fs.scopes.enclosing(k), toks[k].text, k, &ds);
        if (d && d->isPointer && d->initEnd > d->initBegin &&
            rangeHoldsScratch(fs, d->initBegin, d->initEnd, depth + 1))
            return true;
    }
    return false;
}

/**
 * Classify the '=' at @p k: plain assignment, compound assignment
 * (+=, <<=, ...), or not a write at all (==, <=, captures, defaults).
 * @return the token index where the LHS chain ends, or npos.
 */
size_t
assignmentLhsEnd(const std::vector<Token> &toks, size_t k, size_t floor)
{
    if (k + 1 < toks.size() && isPunctSeq(toks, k, "=="))
        return (size_t)-1;
    if (k < floor + 1)
        return (size_t)-1;
    const Token &prev = toks[k - 1];
    if (prev.is("=") || prev.is("!"))
        return (size_t)-1;
    if (prev.is("<") || prev.is(">")) {
        // <<= / >>= are compound writes; <= / >= are comparisons.
        if (k >= floor + 2 && toks[k - 2].is(prev.text.c_str()) &&
            isPunctSeq(toks, k - 2,
                       prev.is("<") ? "<<=" : ">>=")) {
            return k - 3;
        }
        return (size_t)-1;
    }
    if (prev.is("+") || prev.is("-") || prev.is("*") || prev.is("/") ||
        prev.is("%") || prev.is("&") || prev.is("|") || prev.is("^")) {
        if (!isPunctSeq(toks, k - 1, (prev.text + "=").c_str()))
            return (size_t)-1;
        return k - 2;
    }
    return k - 1;
}

/** Analyze one write whose LHS is @p lhs, at the operator line @p ln. */
void
checkWrite(const FileState &fs, const Lhs &lhs, int region, int ln,
           bool rhsScratch, Diagnostics &diag)
{
    if (!lhs.valid())
        return;
    const auto &toks = fs.sf->lex.tokens;
    const std::string &name = toks[lhs.baseTok].text;
    int ws = fs.scopes.enclosing(lhs.baseTok);
    // baseTok + 1: a declaration's init "T x = ..." writes x's own
    // name token, which must resolve to the declaration itself.
    int ds = -1;
    const VarDecl *d =
        fs.scopes.resolve(ws, name, lhs.baseTok + 1, &ds);

    if (d && fs.scopes.within(ds, region)) {
        // Lambda-local, with one exception: a reference binds outer
        // state even when declared inside ([&x = y] or T &r = ...).
        if (d->isRef && !d->isParam && !d->selfConst) {
            diag.report(*fs.sf, ln, "parallel-capture",
                        "write through reference '" + name +
                            "' aliasing state outside the parallel "
                            "lambda (justify with "
                            "NOLINT(parallel-capture))");
        }
        return;
    }

    // Outer or unresolved (member/global) state.
    if (rhsScratch) {
        diag.report(*fs.sf, ln, "parallel-scratch-escape",
                    "scratch() pointer escapes the parallel lambda "
                    "through '" + name +
                        "' (per-thread buffers are invalid on other "
                        "threads)");
        return;
    }
    bool elementWrite = lhs.hasSubscript || lhs.deref;
    if (d) {
        if (d->isAtomic)
            return;
        if (elementWrite ? d->pointeeConst : d->selfConst)
            return;
        if (!capturedByReference(fs, ws, ds, name))
            return; // a by-value copy: the write stays thread-local
    }
    if (subscriptIsChunkDisjoint(fs, lhs, region))
        return;
    diag.report(*fs.sf, ln, "parallel-capture",
                "write to '" + name +
                    "' captured by reference in a parallel lambda is "
                    "not chunk-disjoint (index by the chunk/induction "
                    "variable or justify with "
                    "NOLINT(parallel-capture))");
}

/** The parallel-capture and parallel-scratch-escape sweep. */
void
checkRegionWrites(const FileState &fs, int region, Diagnostics &diag)
{
    const auto &toks = fs.sf->lex.tokens;
    const Scope &lam = fs.scopes.scopes[(size_t)region];
    for (size_t k = lam.bodyBegin; k < lam.bodyEnd; ++k) {
        if (isPunctSeq(toks, k, "++") || isPunctSeq(toks, k, "--")) {
            Lhs lhs;
            if (k + 2 < lam.bodyEnd &&
                toks[k + 2].kind == Token::Kind::Identifier) {
                size_t past = 0;
                lhs = chainForward(toks, k + 2, lam.bodyEnd, &past);
            } else if (k >= lam.bodyBegin + 1) {
                lhs = chainBackward(toks, k - 1, lam.bodyBegin);
            }
            checkWrite(fs, lhs, region, toks[k].line, false, diag);
            ++k; // skip the second punct of the pair
            continue;
        }
        if (!toks[k].is("="))
            continue;
        size_t lhsEnd = assignmentLhsEnd(toks, k, lam.bodyBegin);
        if (lhsEnd == (size_t)-1)
            continue;
        Lhs lhs = chainBackward(toks, lhsEnd, lam.bodyBegin);
        if (!lhs.valid())
            continue;
        // A declaration's init '=' resolves to the declared local and
        // is filtered inside checkWrite; scratch escape needs the RHS.
        size_t stmtEnd = statementEnd(toks, k + 1, lam.bodyEnd);
        bool rhsScratch = rangeHoldsScratch(fs, k + 1, stmtEnd, 0);
        checkWrite(fs, lhs, region, toks[k].line, rhsScratch, diag);
    }
}

/** The parallel-reentrant sweep. */
void
checkRegionReentrancy(const FileState &fs, int region, Diagnostics &diag)
{
    const auto &toks = fs.sf->lex.tokens;
    const Scope &lam = fs.scopes.scopes[(size_t)region];
    for (size_t k = lam.bodyBegin; k < lam.bodyEnd; ++k) {
        const Token &t = toks[k];
        if (t.kind != Token::Kind::Identifier || k + 1 >= lam.bodyEnd ||
            !toks[k + 1].is("(")) {
            continue;
        }
        // Member calls (obj.rand()) name something else entirely.
        if (k >= lam.bodyBegin + 1 && toks[k - 1].is("."))
            continue;
        if (k >= lam.bodyBegin + 2 && isPunctSeq(toks, k - 2, "->"))
            continue;
        bool qualified =
            k >= lam.bodyBegin + 2 && isPunctSeq(toks, k - 2, "::");
        if (isNonReentrantLibc(t.text)) {
            // std::rand and ::rand are the libc function; any other
            // namespace's rand is someone else's business.
            std::string qual;
            if (qualified && k >= lam.bodyBegin + 3 &&
                toks[k - 3].kind == Token::Kind::Identifier) {
                qual = toks[k - 3].text;
            }
            if (!qualified || qual.empty() || qual == "std") {
                diag.report(*fs.sf, t.line, "parallel-reentrant",
                            "call to non-reentrant " + t.text +
                                "() inside a parallel region");
            }
            continue;
        }
        if (!qualified) {
            auto it = fs.staticStateFns.find(t.text);
            if (it != fs.staticStateFns.end()) {
                diag.report(*fs.sf, t.line, "parallel-reentrant",
                            "call to " + t.text +
                                "() which keeps mutable static state "
                                "(line " +
                                std::to_string(it->second) +
                                ") inside a parallel region");
            }
        }
    }
    // Mutable statics declared in the region itself.
    for (size_t s = 0; s < fs.scopes.scopes.size(); ++s) {
        if (!fs.scopes.within((int)s, region))
            continue;
        for (const VarDecl &d : fs.scopes.scopes[s].decls) {
            if (d.isStatic && !d.selfConst && !d.isRef && !d.isAtomic) {
                diag.report(*fs.sf, d.line, "parallel-reentrant",
                            "mutable static local '" + d.name +
                                "' inside a parallel region");
            }
        }
    }
}

/**
 * The parallel-reduction-order check. Per-chunk partial buffers are
 * recognized two ways: an outer base written with a chunk-parameter
 * subscript inside the lambda ("part[chunk] += v"), and outer names
 * appearing together with the chunk parameter in a lambda-local
 * declaration's initializer ("float *gw = part.data() + chunk * n").
 * Any later for-loop in the enclosing function that folds such a base
 * with += must walk ascending (cond '<', increment ++/+=).
 */
void
checkReductionOrder(const FileState &fs, size_t callTok, int region,
                    Diagnostics &diag)
{
    const auto &toks = fs.sf->lex.tokens;
    const Scope &lam = fs.scopes.scopes[(size_t)region];

    const VarDecl *chunkParam = nullptr;
    for (const VarDecl &d : lam.decls) {
        if (d.isParam && d.paramIndex == 2)
            chunkParam = &d;
    }
    if (!chunkParam)
        return;

    auto isChunkIdent = [&](size_t k) {
        if (toks[k].kind != Token::Kind::Identifier ||
            toks[k].text != chunkParam->name) {
            return false;
        }
        int ds = -1;
        const VarDecl *d = fs.scopes.resolve(fs.scopes.enclosing(k),
                                             toks[k].text, k + 1, &ds);
        return d == chunkParam;
    };
    auto isOuterName = [&](size_t k) {
        if (toks[k].kind != Token::Kind::Identifier)
            return false;
        int ds = -1;
        const VarDecl *d = fs.scopes.resolve(fs.scopes.enclosing(k),
                                             toks[k].text, k + 1, &ds);
        return !d || !fs.scopes.within(ds, region);
    };

    std::set<std::string> bases;
    // (a) direct chunk-indexed writes to outer state
    for (size_t k = lam.bodyBegin; k < lam.bodyEnd; ++k) {
        if (!toks[k].is("="))
            continue;
        size_t lhsEnd = assignmentLhsEnd(toks, k, lam.bodyBegin);
        if (lhsEnd == (size_t)-1)
            continue;
        Lhs lhs = chainBackward(toks, lhsEnd, lam.bodyBegin);
        if (!lhs.valid() || !isOuterName(lhs.baseTok))
            continue;
        for (const auto &sub : lhs.subscripts) {
            for (size_t j = sub.first; j < sub.second; ++j) {
                if (isChunkIdent(j))
                    bases.insert(toks[lhs.baseTok].text);
            }
        }
    }
    // (b) lambda-local views into a partial buffer
    for (size_t s = 0; s < fs.scopes.scopes.size(); ++s) {
        if (!fs.scopes.within((int)s, region))
            continue;
        for (const VarDecl &d : fs.scopes.scopes[s].decls) {
            bool usesChunk = false;
            for (size_t j = d.initBegin; j < d.initEnd; ++j)
                usesChunk = usesChunk || isChunkIdent(j);
            if (!usesChunk)
                continue;
            for (size_t j = d.initBegin; j < d.initEnd; ++j) {
                if (isOuterName(j) && !toks[j].isIdent("nullptr") &&
                    !toks[j].isIdent("scratch")) {
                    bases.insert(toks[j].text);
                }
            }
        }
    }
    if (bases.empty())
        return;

    // Scan the rest of the enclosing function for fold loops.
    int encl = fs.scopes.enclosing(callTok);
    size_t searchEnd = fs.scopes.scopes[(size_t)encl].bodyEnd;
    size_t k = statementEnd(toks, callTok, searchEnd);
    while (k < searchEnd) {
        if (!toks[k].isIdent("for") || k + 1 >= searchEnd ||
            !toks[k + 1].is("(")) {
            ++k;
            continue;
        }
        size_t pastParen = matchForward(toks, k + 1, "(", ")");
        size_t bodyB, bodyE;
        if (pastParen < searchEnd && toks[pastParen].is("{")) {
            bodyB = pastParen + 1;
            bodyE = matchForward(toks, pastParen, "{", "}") - 1;
        } else {
            bodyB = pastParen;
            bodyE = statementEnd(toks, pastParen, searchEnd);
        }
        bool foldsBase = false, accumulates = false;
        for (size_t j = bodyB; j < bodyE; ++j) {
            if (toks[j].kind == Token::Kind::Identifier &&
                bases.count(toks[j].text)) {
                foldsBase = true;
            }
            if (isPunctSeq(toks, j, "+="))
                accumulates = true;
        }
        if (foldsBase && accumulates) {
            // Header sections: init ; cond ; incr.
            size_t semi1 = statementEnd(toks, k + 2, pastParen - 1);
            size_t semi2 = statementEnd(toks, semi1 + 1, pastParen - 1);
            bool condAscends = false, incrAscends = false;
            for (size_t j = semi1 + 1; j < semi2; ++j) {
                if (toks[j].is("<") && !isPunctSeq(toks, j, "<<"))
                    condAscends = true;
            }
            for (size_t j = semi2 + 1; j + 1 < pastParen; ++j) {
                if (isPunctSeq(toks, j, "++") ||
                    isPunctSeq(toks, j, "+=")) {
                    incrAscends = true;
                }
            }
            if (!condAscends || !incrAscends) {
                diag.report(*fs.sf, toks[k].line,
                            "parallel-reduction-order",
                            "per-chunk partials must fold in ascending "
                            "chunk order (see base/parallel.hh, or "
                            "justify with "
                            "NOLINT(parallel-reduction-order))");
            }
            k = bodyE + 1; // inner loops of a fold are part of it
            continue;
        }
        ++k;
    }
}

/** Chunk count for all-literal (begin, end, grain), or -1. */
long long
literalChunkCount(const std::vector<Token> &toks,
                  const std::vector<std::pair<size_t, size_t>> &args)
{
    long long v[3];
    for (int a = 0; a < 3; ++a) {
        const auto &r = args[(size_t)a];
        if (r.second != r.first + 1 ||
            toks[r.first].kind != Token::Kind::Number) {
            return -1;
        }
        v[a] = std::strtoll(toks[r.first].text.c_str(), nullptr, 0);
    }
    long long n = v[1] - v[0];
    if (n <= 0)
        return 0;
    return v[2] > 0 ? (n + v[2] - 1) / v[2] : 1;
}

/** Resolve the lambda scope a call site's 4th argument names. */
int
findRegionLambda(const FileState &fs, size_t callTok, size_t argB,
                 size_t argE)
{
    const auto &toks = fs.sf->lex.tokens;
    if (argE == argB + 1 &&
        toks[argB].kind == Token::Kind::Identifier) {
        return fs.scopes.lambdaByName(fs.scopes.enclosing(callTok),
                                      toks[argB].text);
    }
    // Inline lambda: the outermost Lambda scope inside the argument.
    int best = -1;
    size_t bestBegin = (size_t)-1;
    for (size_t s = 0; s < fs.scopes.scopes.size(); ++s) {
        const Scope &sc = fs.scopes.scopes[s];
        if (sc.kind == Scope::Kind::Lambda && sc.bodyBegin >= argB &&
            sc.bodyEnd <= argE && sc.bodyBegin < bestBegin) {
            best = (int)s;
            bestBegin = sc.bodyBegin;
        }
    }
    return best;
}

void
analyzeCallSite(const FileState &fs, size_t callTok,
                std::set<int> &analyzed, Diagnostics &diag)
{
    const auto &toks = fs.sf->lex.tokens;
    size_t paren = callTok + 1;
    size_t pastParen = matchForward(toks, paren, "(", ")");

    // Split the argument list on top-level commas.
    std::vector<std::pair<size_t, size_t>> args;
    size_t argB = paren + 1;
    int depth = 0;
    for (size_t k = paren + 1; k + 1 < pastParen; ++k) {
        const Token &t = toks[k];
        if (t.is("(") || t.is("[") || t.is("{"))
            ++depth;
        else if (t.is(")") || t.is("]") || t.is("}"))
            --depth;
        else if (t.is(",") && depth == 0) {
            args.emplace_back(argB, k);
            argB = k + 1;
        }
    }
    args.emplace_back(argB, pastParen - 1);
    if (args.size() != 4)
        return; // a declaration, or not the parallelFor we know

    // (begin, end, grain) all literal and at most one chunk: the body
    // runs inline on the caller — nothing can race.
    long long chunks = literalChunkCount(toks, args);
    if (chunks >= 0 && chunks <= 1)
        return;

    int region = findRegionLambda(fs, callTok, args[3].first,
                                  args[3].second);
    if (region < 0)
        return;
    if (analyzed.insert(region).second) {
        checkRegionWrites(fs, region, diag);
        checkRegionReentrancy(fs, region, diag);
    }
    checkReductionOrder(fs, callTok, region, diag);
}

/** Function name -> line of its first mutable function-local static. */
void
collectStaticStateFns(FileState &fs)
{
    const auto &scopes = fs.scopes.scopes;
    for (size_t f = 0; f < scopes.size(); ++f) {
        if (scopes[f].kind != Scope::Kind::Function)
            continue;
        for (size_t s = 0; s < scopes.size(); ++s) {
            if (!fs.scopes.within((int)s, (int)f))
                continue;
            for (const VarDecl &d : scopes[s].decls) {
                if (d.isStatic && !d.selfConst && !d.isRef &&
                    !d.isAtomic &&
                    !fs.staticStateFns.count(scopes[f].name)) {
                    fs.staticStateFns[scopes[f].name] = d.line;
                }
            }
        }
    }
}

} // namespace

void
runParallelRegionPass(const Context &ctx, Diagnostics &diag)
{
    for (const SourceFile &sf : ctx.files) {
        FileState fs;
        fs.sf = &sf;
        fs.scopes = parseScopes(sf.lex);
        collectStaticStateFns(fs);

        const auto &toks = sf.lex.tokens;
        std::set<int> analyzed;
        for (size_t k = 0; k + 1 < toks.size(); ++k) {
            if (toks[k].isIdent("parallelFor") && toks[k + 1].is("("))
                analyzeCallSite(fs, k, analyzed, diag);
        }
    }
}

} // namespace ealint
