/**
 * @file
 * Token pass: the per-file convention rules, rebuilt on the shared
 * tokenizer. Running on tokens instead of blanked-out lines fixes two
 * long-standing false positives of the string-matching lint: CRLF
 * files no longer trip the trailing-whitespace rule (they get a
 * dedicated crlf finding), and "= \n delete" declarations are
 * recognized across the line break.
 */

#include <cctype>
#include <string>

#include "passes.hh"

namespace ealint {

namespace {

/** @return expected include-guard macro for a repo-relative path. */
std::string
expectedGuard(std::string rel)
{
    const std::string prefix = "src/";
    if (rel.rfind(prefix, 0) == 0)
        rel = rel.substr(prefix.size());
    std::string guard = "EDGEADAPT_";
    for (char c : rel) {
        guard += std::isalnum((unsigned char)c)
                     ? (char)std::toupper((unsigned char)c)
                     : '_';
    }
    return guard;
}

/** std:: names whose presence means hand-rolled concurrency. */
bool
isThreadPrimitive(const Token &t)
{
    return t.isIdent("thread") || t.isIdent("jthread") ||
           t.isIdent("mutex") || t.isIdent("recursive_mutex") ||
           t.isIdent("timed_mutex") ||
           t.isIdent("recursive_timed_mutex") ||
           t.isIdent("shared_mutex") ||
           t.isIdent("shared_timed_mutex") ||
           t.isIdent("condition_variable") ||
           t.isIdent("condition_variable_any");
}

/** Standard headers that only concurrency code has business with. */
bool
isThreadHeader(const std::string &rest)
{
    return rest.rfind("<thread>", 0) == 0 ||
           rest.rfind("<mutex>", 0) == 0 ||
           rest.rfind("<condition_variable>", 0) == 0 ||
           rest.rfind("<shared_mutex>", 0) == 0;
}

/** Intrinsics headers that mark a TU as vector-ISA-specific. */
bool
isIntrinsicsHeader(const std::string &rest)
{
    return rest.rfind("<immintrin.h>", 0) == 0 ||
           rest.rfind("<x86intrin.h>", 0) == 0 ||
           rest.rfind("<emmintrin.h>", 0) == 0 ||
           rest.rfind("<xmmintrin.h>", 0) == 0 ||
           rest.rfind("<arm_neon.h>", 0) == 0;
}

/** Identifier prefixes of the x86/Neon intrinsic families. */
bool
isIntrinsicIdent(const std::string &s)
{
    return s.rfind("__m128", 0) == 0 || s.rfind("__m256", 0) == 0 ||
           s.rfind("__m512", 0) == 0 || s.rfind("_mm_", 0) == 0 ||
           s.rfind("_mm256_", 0) == 0 || s.rfind("_mm512_", 0) == 0 ||
           s.rfind("vld1", 0) == 0 || s.rfind("vst1", 0) == 0 ||
           s.rfind("float32x", 0) == 0;
}

/**
 * String-literal needles of the meter backends. Built by
 * concatenation so this file's own literals never contain them —
 * otherwise the rule would fire on its own implementation.
 */
const std::string &
powercapNeedle()
{
    static const std::string s = std::string("power") + "cap";
    return s;
}

const std::string &
raplNeedle()
{
    static const std::string s = std::string("intel-") + "rapl";
    return s;
}

/** Identifiers that reach the kernel's power/counter interfaces. */
bool
isMeterIdent(const Token &t)
{
    return t.isIdent("perf_event_open") ||
           t.isIdent("SYS_perf_event_open") || t.isIdent("syscall");
}

/** First identifier in a directive's rest text ("#ifndef NAME..."). */
std::string
firstIdent(const std::string &rest)
{
    size_t end = 0;
    while (end < rest.size() && isWordChar(rest[end]))
        ++end;
    return rest.substr(0, end);
}

void
checkGuard(const SourceFile &sf, Diagnostics &diag)
{
    std::string want = expectedGuard(sf.rel);
    const auto &dirs = sf.lex.directives;
    for (size_t i = 0; i < dirs.size(); ++i) {
        if (dirs[i].name != "ifndef")
            continue;
        std::string name = firstIdent(dirs[i].rest);
        if (name != want) {
            diag.report(sf, dirs[i].line, "guard",
                        "include guard " + name + " should be " + want);
            return;
        }
        if (i + 1 >= dirs.size() || dirs[i + 1].name != "define" ||
            firstIdent(dirs[i + 1].rest) != want) {
            diag.report(sf, dirs[i].line + 1, "guard",
                        "#ifndef " + want +
                            " must be followed by #define " + want);
        }
        return;
    }
    diag.report(sf, 1, "guard",
                "header has no include guard (want " + want + ")");
}

void
checkWhitespace(const SourceFile &sf, Diagnostics &diag)
{
    if (sf.crlfLines > 0) {
        diag.report(sf, sf.firstCrlfLine, "crlf",
                    "CRLF line endings on " +
                        std::to_string(sf.crlfLines) +
                        " line(s) (convert to LF)");
    }
    for (size_t i = 0; i < sf.rawLines.size(); ++i) {
        std::string line = sf.rawLines[i];
        int ln = (int)i + 1;
        // The '\r' of a CRLF ending is the crlf rule's business, not
        // trailing whitespace.
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.find('\t') != std::string::npos)
            diag.report(sf, ln, "tab",
                        "tab character (indent with spaces)");
        if (!line.empty() && std::isspace((unsigned char)line.back()))
            diag.report(sf, ln, "space", "trailing whitespace");
    }
}

void
checkTokens(const SourceFile &sf, Diagnostics &diag)
{
    // The two sanctioned homes of std::chrono: the stopwatch and the
    // trace clock. Everything else times through them.
    bool chronoAllowed = sf.rel.rfind("src/profile/", 0) == 0 ||
                         sf.rel.rfind("src/obs/", 0) == 0;
    // Likewise the two sanctioned homes of raw concurrency: the
    // thread pool and the observability internals. Everything else
    // parallelizes through parallel::parallelFor.
    bool threadAllowed = sf.rel.rfind("src/base/parallel.", 0) == 0 ||
                         sf.rel.rfind("src/obs/", 0) == 0;
    // And the one sanctioned home of vector intrinsics: the runtime-
    // dispatched kernel layer. Everything else (tests and benches
    // included) goes through the simd:: dispatch API so a TU never
    // silently becomes ISA-specific.
    bool simdAllowed = sf.rel.rfind("src/tensor/simd/", 0) == 0;
    // The one sanctioned home of raw power metering: the energy /
    // perf-counter backends. Everything else reads meters through the
    // obs::energy* API, so RAPL paths and perf_event_open can never
    // leak into portable code.
    bool meterAllowed = sf.rel.rfind("src/obs/energy", 0) == 0 ||
                        sf.rel.rfind("src/obs/perfcount", 0) == 0;
    const auto &toks = sf.lex.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (!meterAllowed && t.kind == Token::Kind::String &&
            (t.text.find(powercapNeedle()) != std::string::npos ||
             t.text.find(raplNeedle()) != std::string::npos)) {
            // "power"/"cap" split: see powercapNeedle().
            diag.report(sf, t.line, "meter-isolation",
                        "RAPL/power"
                        "cap sysfs path literal outside "
                        "src/obs/energy*/perfcount* (use the "
                        "obs::energy API)");
        }
        if (t.kind != Token::Kind::Identifier)
            continue;
        if (!meterAllowed && isMeterIdent(t)) {
            diag.report(sf, t.line, "meter-isolation",
                        t.text + " outside src/obs/energy*/"
                                 "perfcount* (use the obs::energy "
                                 "API)");
        }
        auto next = [&](size_t off) -> const Token * {
            return i + off < toks.size() ? &toks[i + off] : nullptr;
        };
        if (sf.isHeader && t.isIdent("using") && next(1) &&
            next(1)->isIdent("namespace")) {
            diag.report(sf, t.line, "using-ns",
                        "using namespace in a header");
        }
        if (t.isIdent("new")) {
            // Placement new over caller-provided storage is fine; the
            // rule targets raw heap allocation.
            if (!next(1) || !next(1)->is("(")) {
                diag.report(sf, t.line, "raw-new",
                            "raw new (use std::make_unique or "
                            "containers)");
            }
        }
        if (!simdAllowed && isIntrinsicIdent(t.text)) {
            diag.report(sf, t.line, "simd-isolation",
                        t.text + " outside src/tensor/simd/ (use the "
                                 "simd:: dispatch API)");
        }
        if (t.isIdent("delete")) {
            // "= delete" function declarations are fine, and thanks to
            // the tokenizer so is "=" on the previous line.
            if (i == 0 || !toks[i - 1].is("=")) {
                diag.report(sf, t.line, "raw-delete",
                            "raw delete (owning pointers must be "
                            "smart)");
            }
        }
        if (sf.isSrc) {
            bool stdQualified = t.isIdent("std") && next(1) &&
                                next(1)->is(":") && next(2) &&
                                next(2)->is(":");
            if (stdQualified && next(3) && next(3)->isIdent("cout")) {
                diag.report(sf, t.line, "stdio",
                            "std::cout in library code (use "
                            "inform()/warn())");
            }
            if (t.isIdent("printf")) {
                diag.report(sf, t.line, "stdio",
                            "printf in library code (use "
                            "inform()/warn())");
            }
            if (!chronoAllowed && stdQualified && next(3) &&
                next(3)->isIdent("chrono")) {
                diag.report(sf, t.line, "chrono",
                            "std::chrono outside src/profile/ and "
                            "src/obs/ (use profile::Stopwatch or "
                            "trace spans)");
            }
            if (!threadAllowed && stdQualified && next(3) &&
                isThreadPrimitive(*next(3))) {
                diag.report(sf, t.line, "raw-thread",
                            "std::" + next(3)->text +
                                " outside src/base/parallel.* and "
                                "src/obs/ (use parallel::parallelFor)");
            }
        }
    }
    if (!simdAllowed) {
        for (const Directive &d : sf.lex.directives) {
            if (d.name == "include" && isIntrinsicsHeader(d.rest)) {
                diag.report(sf, d.line, "simd-isolation",
                            d.rest.substr(0, d.rest.find('>') + 1) +
                                " include outside src/tensor/simd/");
            }
        }
    }
    if (sf.isSrc) {
        for (const Directive &d : sf.lex.directives) {
            if (d.name != "include")
                continue;
            if (!chronoAllowed && d.rest.rfind("<chrono>", 0) == 0) {
                diag.report(sf, d.line, "chrono",
                            "<chrono> include outside src/profile/ "
                            "and src/obs/");
            }
            if (!threadAllowed && isThreadHeader(d.rest)) {
                diag.report(sf, d.line, "raw-thread",
                            d.rest.substr(0, d.rest.find('>') + 1) +
                                " include outside src/base/parallel.* "
                                "and src/obs/");
            }
        }
    }
}

} // namespace

void
runTokenPass(const Context &ctx, Diagnostics &diag)
{
    for (const SourceFile &sf : ctx.files) {
        checkWhitespace(sf, diag);
        checkTokens(sf, diag);
        if (sf.isHeader)
            checkGuard(sf, diag);
        for (int ln : sf.bareNolint) {
            diag.report(sf, ln, "nolint",
                        "bare NOLINT (write NOLINT(rule-id, ...))");
        }
        for (const auto &decl : sf.nolintDecls) {
            if (!findRule(decl.second)) {
                diag.report(sf, decl.first, "nolint",
                            "NOLINT names unknown rule '" +
                                decl.second + "'");
            }
        }
    }
}

} // namespace ealint
