/**
 * @file
 * Unused-include pass (IWYU-lite). For every quoted include of a repo
 * header in a src/ file, the pass computes the header's exported
 * symbols and asks whether any of them appears in the including
 * file's token stream. No hit means the direct include is dead weight
 * (or the file is leaning on the header's transitive includes —
 * equally worth fixing) and a warning is reported.
 *
 * "Exported symbol" is a token-level over-approximation: macro names,
 * type names introduced by class/struct/enum/union, using-alias
 * names, and any identifier directly followed by '(', '=', '{' or
 * ';' (function declarations, variables, forward declarations). The
 * over-approximation errs toward "used", so a warning from this pass
 * is a strong signal, while silence is not a proof.
 */

#include <filesystem>
#include <map>
#include <set>
#include <string>

#include "passes.hh"

namespace ealint {

namespace fs = std::filesystem;

namespace {

/** Keywords that must never count as exported symbols. */
bool
isKeywordish(const std::string &s)
{
    static const std::set<std::string> kw = {
        "if",      "for",    "while",  "switch",   "return", "sizeof",
        "class",   "struct", "enum",   "union",    "using",  "namespace",
        "public",  "private", "protected", "virtual", "override",
        "const",   "constexpr", "inline", "static", "extern", "template",
        "typename", "typedef", "operator", "do",    "else",   "case",
        "default", "break",  "continue", "new",    "delete", "this",
        "true",    "false",  "nullptr", "void",    "bool",   "char",
        "int",     "float",  "double", "long",    "short",  "unsigned",
        "signed",  "auto",   "noexcept", "final",  "explicit", "friend",
        "catch",   "try",    "throw",
    };
    return kw.count(s) > 0;
}

/** Compute the exported-symbol set of a lexed header. */
std::set<std::string>
exportsOf(const SourceFile &sf)
{
    std::set<std::string> out;
    for (const Directive &d : sf.lex.directives) {
        if (d.name != "define")
            continue;
        size_t end = 0;
        while (end < d.rest.size() && isWordChar(d.rest[end]))
            ++end;
        if (end > 0)
            out.insert(d.rest.substr(0, end));
    }
    const auto &toks = sf.lex.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != Token::Kind::Identifier || isKeywordish(t.text))
            continue;
        // A namespace name is shared across the whole repo — seeing it
        // in the includer proves nothing about this header.
        if (i > 0 && toks[i - 1].isIdent("namespace"))
            continue;
        // class/struct/enum/union NAME (skipping "enum class").
        if (i > 0 && toks[i - 1].kind == Token::Kind::Identifier) {
            const std::string &prev = toks[i - 1].text;
            bool typeIntro = prev == "class" || prev == "struct" ||
                             prev == "enum" || prev == "union";
            // "template <class T>": T is a parameter, not an export.
            bool templateParam =
                i > 1 && (toks[i - 2].is("<") || toks[i - 2].is(","));
            if (typeIntro && !templateParam) {
                out.insert(t.text);
                continue;
            }
            if (prev == "using" && i + 1 < toks.size() &&
                toks[i + 1].is("=")) {
                out.insert(t.text);
                continue;
            }
        }
        if (i + 1 < toks.size()) {
            const Token &n = toks[i + 1];
            if (n.is("(") || n.is("=") || n.is("{") || n.is(";"))
                out.insert(t.text);
        }
    }
    return out;
}

} // namespace

void
runUnusedIncludePass(const Context &ctx, Diagnostics &diag)
{
    // Headers may be included by files outside the linted roots'
    // intersection, so resolve lazily against the loaded set first
    // and fall back to reading the header off disk.
    std::map<std::string, const SourceFile *> byRel;
    for (const SourceFile &sf : ctx.files)
        byRel[sf.rel] = &sf;
    std::map<std::string, SourceFile> extraFiles;
    std::map<std::string, std::set<std::string>> exportsCache;

    auto exportsFor =
        [&](const std::string &rel) -> const std::set<std::string> * {
        auto cached = exportsCache.find(rel);
        if (cached != exportsCache.end())
            return &cached->second;
        const SourceFile *sf = nullptr;
        auto loaded = byRel.find(rel);
        if (loaded != byRel.end()) {
            sf = loaded->second;
        } else {
            SourceFile extra;
            fs::path abs = fs::path(ctx.repoRoot) / rel;
            if (!loadSourceFile(abs.generic_string(), rel, extra))
                return nullptr;
            sf = &(extraFiles[rel] = std::move(extra));
        }
        return &(exportsCache[rel] = exportsOf(*sf));
    };

    for (const SourceFile &sf : ctx.files) {
        if (!sf.isSrc)
            continue;
        // foo.cc gets its interface from foo.hh by convention; that
        // include is the definition of "used".
        std::string primary;
        size_t dot = sf.rel.rfind('.');
        if (dot != std::string::npos && sf.rel.substr(dot) == ".cc")
            primary = sf.rel.substr(4, dot - 4) + ".hh"; // minus src/

        std::set<std::string> identifiers;
        for (const Token &t : sf.lex.tokens) {
            if (t.kind == Token::Kind::Identifier)
                identifiers.insert(t.text);
        }
        // Macros can also be consumed by the preprocessor itself
        // (#ifdef EDGEADAPT_...), so directive text counts as usage.
        for (const Directive &d : sf.lex.directives) {
            if (d.name == "include")
                continue;
            std::string cur;
            for (char c : d.rest + " ") {
                if (isWordChar(c)) {
                    cur += c;
                } else if (!cur.empty()) {
                    identifiers.insert(cur);
                    cur.clear();
                }
            }
        }

        for (const Directive &d : sf.lex.directives) {
            std::string target = quotedIncludeTarget(d);
            if (target.empty() || target == primary)
                continue;
            std::string rel = "src/" + target;
            std::error_code ec;
            if (!fs::is_regular_file(fs::path(ctx.repoRoot) / rel, ec))
                continue;
            const std::set<std::string> *exp = exportsFor(rel);
            if (!exp)
                continue;
            bool used = false;
            for (const std::string &sym : *exp) {
                if (identifiers.count(sym)) {
                    used = true;
                    break;
                }
            }
            if (!used) {
                diag.report(sf, d.line, "unused-include",
                            "no exported symbol of " + target +
                                " is used here (drop the include or "
                                "NOLINT(unused-include) it)");
            }
        }
    }
}

} // namespace ealint
