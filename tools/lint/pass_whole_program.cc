/**
 * @file
 * The whole-program pass: four interprocedural rules over the cross-TU
 * call graph (callgraph.hh).
 *
 *  - parallel-interproc: a parallelFor body must not reach, through
 *    any resolved call chain, a function that writes shared
 *    non-atomic state (globals, foreign static locals, non-reentrant
 *    libc) or calls through a function pointer. The same-file
 *    static-local case is left to the per-file parallel-reentrant
 *    rule, which still works under --changed-only.
 *  - hot-alloc-interproc: a loop in hot code — any src/tensor/
 *    function, or a parallelFor region body anywhere in src/ — must
 *    not reach heap allocation through helper calls: the laundering
 *    hole left by the per-file hot-alloc/untracked-alloc rules.
 *  - signal-safety: every function reachable from the post-mortem
 *    handler set (functions installed via setCheckFailureHook /
 *    signal / sigaction / .sa_handler assignment) must be
 *    async-signal-safe: no allocation, locks, stdio, throwing,
 *    non-reentrant libc, indirect calls, or calls to functions the
 *    analyzer cannot see and does not whitelist.
 *  - layer-call: the declared module layering enforced on resolved
 *    call edges. A call is only flagged when *every* in-src candidate
 *    sits in a strictly higher layer — conservative against overload
 *    collisions across modules.
 *
 * All findings honor NOLINT(rule) at their anchor line: effect-site
 * rules anchor at the effect (allocation, write), call-site rules at
 * the call.
 */

#include <map>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "callgraph.hh"
#include "passes.hh"

namespace ealint {

namespace {

/** First effect in @p v not suppressed for @p rule, or nullptr. */
const Effect *
firstActive(const std::vector<Effect> &v, const SourceFile &sf,
            const char *rule)
{
    for (const Effect &e : v) {
        if (!sf.suppressed(e.line, rule))
            return &e;
    }
    return nullptr;
}

/**
 * Line of the first call hop out of @p start on the discovered path
 * to @p target — the edge rules anchor their finding on so the
 * suppression comment sits inside the offending body.
 */
int
firstHopLine(int start, int target,
             const std::map<int, std::pair<int, int>> &parent)
{
    int n = target;
    int line = 0;
    while (n != start) {
        auto it = parent.find(n);
        if (it == parent.end())
            break;
        line = it->second.second;
        n = it->second.first;
    }
    return line;
}

// ---- parallel-interproc ---------------------------------------------

void checkRegionRefArgs(const CallGraph &g, int region,
                        Diagnostics &diag);

void
checkParallelInterproc(const CallGraph &g, Diagnostics &diag)
{
    static const char *kRule = "parallel-interproc";
    for (size_t u = 0; u < g.nodes.size(); ++u) {
        const CGNode &node = g.nodes[u];
        for (const CallSite &cs : node.fs->calls) {
            if (cs.name != "parallelFor")
                continue;
            // The region body: any lambda edge created by this call
            // site (an inline literal or a named lambda argument).
            std::set<int> regions;
            for (const auto &e : node.calleeSites) {
                if (e.second == cs.line &&
                    g.nodes[(size_t)e.first].fs->isLambda) {
                    regions.insert(e.first);
                }
            }
            for (int r : regions) {
                std::map<int, std::pair<int, int>> parent;
                std::vector<int> reach = g.reachable(r, &parent);
                const CGNode &rn = g.nodes[(size_t)r];
                for (int t : reach) {
                    const CGNode &tn = g.nodes[(size_t)t];
                    const Effect *ind =
                        firstActive(tn.fs->indirectCalls, *tn.sf,
                                    kRule);
                    if (ind && t == r) {
                        diag.report(
                            *rn.sf, ind->line, kRule,
                            "parallel region calls through the "
                            "function pointer '" +
                                ind->what +
                                "' (cannot prove race-freedom)");
                    } else if (ind) {
                        int line = firstHopLine(r, t, parent);
                        diag.report(
                            *rn.sf, line ? line : rn.fs->line, kRule,
                            "parallel region reaches '" +
                                g.nodeName(t) +
                                "' which calls through the function "
                                "pointer '" +
                                ind->what +
                                "' (cannot prove race-freedom; path " +
                                g.pathString(r, t, parent) + ")");
                    }
                    if (t == r)
                        continue;
                    const Effect *gw = firstActive(
                        tn.fs->globalWrites, *tn.sf, kRule);
                    if (gw) {
                        diag.report(
                            *rn.sf, firstHopLine(r, t, parent), kRule,
                            "parallel region reaches '" +
                                g.nodeName(t) +
                                "' which writes shared state '" +
                                gw->what + "' (" + tn.sf->rel + ":" +
                                std::to_string(gw->line) +
                                "; path " +
                                g.pathString(r, t, parent) + ")");
                    }
                    const Effect *sw = firstActive(
                        tn.fs->staticLocalWrites, *tn.sf, kRule);
                    if (sw && tn.sf != rn.sf) {
                        diag.report(
                            *rn.sf, firstHopLine(r, t, parent), kRule,
                            "parallel region reaches '" +
                                g.nodeName(t) +
                                "' which mutates function-local "
                                "static '" +
                                sw->what + "' (" + tn.sf->rel + ":" +
                                std::to_string(sw->line) +
                                "; path " +
                                g.pathString(r, t, parent) + ")");
                    }
                    const Effect *lc = firstActive(
                        tn.fs->libcUnsafe, *tn.sf, kRule);
                    if (lc) {
                        diag.report(
                            *rn.sf, firstHopLine(r, t, parent), kRule,
                            "parallel region reaches '" +
                                g.nodeName(t) +
                                "' which calls non-reentrant '" +
                                lc->what + "' (path " +
                                g.pathString(r, t, parent) + ")");
                    }
                }
                // By-reference arguments handed from the region to a
                // callee that writes the matching parameter.
                checkRegionRefArgs(g, r, diag);
            }
        }
    }
}

void
checkRegionRefArgs(const CallGraph &g, int region, Diagnostics &diag)
{
    static const char *kRule = "parallel-interproc";
    const CGNode &rn = g.nodes[(size_t)region];
    const FileScopes &scopes = g.files[(size_t)rn.file].scopes;
    for (const CallSite &cs : rn.fs->calls) {
        std::vector<int> targets = g.resolveCall(region, cs);
        if (targets.empty())
            continue;
        for (const CallArg &a : cs.bareArgs) {
            if (a.addressOf)
                continue;
            int found = -1;
            const VarDecl *v = scopes.resolve(
                scopes.enclosing(a.tok), a.name, a.tok, &found);
            if (!v || v->isAtomic || v->selfConst || v->isParam ||
                v->isInduction) {
                continue;
            }
            // Only captured state races: the variable must live
            // outside the region body.
            if (scopes.within(found, rn.scope))
                continue;
            for (int t : targets) {
                const CGNode &tn = g.nodes[(size_t)t];
                if (!tn.fs->writesParamIdx.count(a.index))
                    continue;
                diag.report(
                    *rn.sf, cs.line, kRule,
                    "parallel region passes captured '" + a.name +
                        "' to '" + g.nodeName(t) +
                        "' which writes through parameter " +
                        std::to_string(a.index) +
                        " (unsynchronized shared write)");
                break;
            }
        }
    }
}

// ---- hot-alloc-interproc --------------------------------------------

/** Node ids of every parallelFor region lambda in the graph. */
std::set<int>
regionLambdas(const CallGraph &g)
{
    std::set<int> out;
    for (size_t u = 0; u < g.nodes.size(); ++u) {
        const CGNode &node = g.nodes[u];
        for (const CallSite &cs : node.fs->calls) {
            if (cs.name != "parallelFor")
                continue;
            for (const auto &e : node.calleeSites) {
                if (e.second == cs.line &&
                    g.nodes[(size_t)e.first].fs->isLambda) {
                    out.insert(e.first);
                }
            }
        }
    }
    return out;
}

void
checkHotAllocInterproc(const CallGraph &g, Diagnostics &diag)
{
    static const char *kRule = "hot-alloc-interproc";
    // Transitive "reaches an unsuppressed allocation" bit, with a
    // witness edge for the message; monotone fixpoint, so recursion
    // and SCC cycles converge naturally.
    size_t n = g.nodes.size();
    std::vector<char> reach(n, 0);
    std::vector<int> via(n, -1); // callee that made the bit flip
    for (size_t i = 0; i < n; ++i) {
        if (firstActive(g.nodes[i].fs->allocs, *g.nodes[i].sf, kRule))
            reach[i] = 1;
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 0; i < n; ++i) {
            if (reach[i])
                continue;
            for (int c : g.nodes[i].callees) {
                if (reach[(size_t)c]) {
                    reach[i] = 1;
                    via[i] = c;
                    changed = true;
                    break;
                }
            }
        }
    }
    auto witness = [&](int t) {
        std::string path = g.nodeName(t);
        int w = t;
        while (via[(size_t)w] >= 0) {
            w = via[(size_t)w];
            path += " -> " + g.nodeName(w);
        }
        const Effect *e = firstActive(g.nodes[(size_t)w].fs->allocs,
                                      *g.nodes[(size_t)w].sf, kRule);
        if (e) {
            path += " (allocates '" + e->what + "' at " +
                    g.nodes[(size_t)w].sf->rel + ":" +
                    std::to_string(e->line) + ")";
        }
        return path;
    };
    // Hot code: every function in src/tensor (kernel code by
    // definition) plus every parallelFor region body in src/ —
    // module-management loops in nn (clone, parameter collection)
    // legitimately allocate and are not hot.
    std::set<int> regions = regionLambdas(g);
    for (size_t u = 0; u < n; ++u) {
        const CGNode &node = g.nodes[u];
        if (!node.sf->isSrc)
            continue;
        if (node.sf->module != "tensor" && !regions.count((int)u))
            continue;
        std::set<size_t> reported;
        for (const CallSite &cs : node.fs->calls) {
            if (!cs.inLoop || reported.count(cs.tok))
                continue;
            for (const auto &e : node.calleeSites) {
                if (e.second != cs.line || !reach[(size_t)e.first])
                    continue;
                // Direct allocation in the loop body itself is the
                // per-file hot-alloc rule's finding, not ours.
                if (e.first == (int)u)
                    continue;
                diag.report(*node.sf, cs.line, kRule,
                            "loop reaches heap allocation through "
                            "'" +
                                cs.name + "': " + witness(e.first));
                reported.insert(cs.tok);
                break;
            }
        }
    }
}

// ---- signal-safety --------------------------------------------------

/**
 * Names the signal-safety rule accepts without a summary: the POSIX
 * async-signal-safe set actually used on the post-mortem path, plus
 * primitives the runtime hand-verifies (atomic fences, chrono's
 * steady_clock reads, float classification).
 */
const std::unordered_set<std::string> &
signalSafeCalls()
{
    static const std::unordered_set<std::string> s = {
        // POSIX async-signal-safe
        "write", "open", "close", "raise", "abort", "_exit", "_Exit",
        "signal", "sigaction", "sigemptyset", "sigfillset",
        "sigaddset", "sigdelset", "kill", "getpid",
        // freestanding memory/string primitives
        "memcpy", "memmove", "memset", "strlen", "strcmp", "strncmp",
        "strchr",
        // hand-verified lock-free / constexpr primitives
        "atomic_thread_fence", "min", "max", "isfinite", "isnan",
        "signbit", "now", "duration_cast",
    };
    return s;
}

void
checkSignalSafety(const CallGraph &g, Diagnostics &diag)
{
    static const char *kRule = "signal-safety";
    // The handler set: functions whose address reaches a handler
    // registration point.
    std::set<int> anchors;
    for (size_t u = 0; u < g.nodes.size(); ++u) {
        const CGNode &node = g.nodes[u];
        for (const CallSite &cs : node.fs->calls) {
            if (cs.name != "setCheckFailureHook" &&
                cs.name != "signal" && cs.name != "sigaction") {
                continue;
            }
            for (const CallArg &a : cs.bareArgs) {
                for (int t : g.byName(a.name))
                    anchors.insert(t);
            }
        }
        for (const std::string &h : node.fs->handlerAssigns) {
            for (int t : g.byName(h))
                anchors.insert(t);
        }
    }
    // First-anchor-wins global visit so shared helpers (the artifact
    // writer both handlers call) are reported once.
    std::set<int> visited;
    for (int a : anchors) {
        std::map<int, std::pair<int, int>> parent;
        std::vector<int> reach = g.reachable(a, &parent);
        std::string anchorName = g.nodeName(a);
        for (int t : reach) {
            if (!visited.insert(t).second)
                continue;
            const CGNode &tn = g.nodes[(size_t)t];
            std::string where = t == a
                                    ? "handler '" + anchorName + "'"
                                    : "'" + g.nodeName(t) +
                                          "' on the signal path of "
                                          "handler '" +
                                          anchorName + "' (path " +
                                          g.pathString(a, t, parent) +
                                          ")";
            struct Check
            {
                const std::vector<Effect> *v;
                const char *label;
            };
            const Check checks[] = {
                {&tn.fs->allocs, "allocates"},
                {&tn.fs->lockUses, "takes a lock"},
                {&tn.fs->stdioUses, "uses stdio"},
                {&tn.fs->throwSites, "throws"},
                {&tn.fs->libcUnsafe, "calls non-reentrant libc"},
                {&tn.fs->indirectCalls,
                 "calls through a function pointer"},
            };
            for (const Check &c : checks) {
                const Effect *e = firstActive(*c.v, *tn.sf, kRule);
                if (e) {
                    diag.report(*tn.sf, e->line, kRule,
                                std::string(c.label) + " ('" +
                                    e->what + "') in " + where);
                }
            }
            for (const CallSite *cs : tn.unresolved) {
                if (signalSafeCalls().count(cs->name))
                    continue;
                // Already reported as a concrete effect on this line
                // (malloc is both an alloc and an unresolved call).
                bool dup = false;
                for (const Check &c : checks) {
                    for (const Effect &e : *c.v)
                        dup = dup || e.line == cs->line;
                }
                if (dup)
                    continue;
                diag.report(*tn.sf, cs->line, kRule,
                            "call to '" + cs->name +
                                "' which is not provably "
                                "async-signal-safe in " +
                                where);
            }
            for (const CallSite &cs : tn.fs->calls) {
                if (cs.kind == CallSite::Kind::CallbackParam) {
                    diag.report(*tn.sf, cs.line, kRule,
                                "indirect callback '" + cs.name +
                                    "' invoked in " + where);
                }
            }
        }
    }
}

// ---- layer-call -----------------------------------------------------

void
checkLayerCall(const CallGraph &g, Diagnostics &diag)
{
    static const char *kRule = "layer-call";
    for (size_t u = 0; u < g.nodes.size(); ++u) {
        const CGNode &node = g.nodes[u];
        if (!node.sf->isSrc)
            continue;
        int callerLayer = moduleLayer(node.sf->module);
        if (callerLayer < 0)
            continue;
        for (const CallSite &cs : node.fs->calls) {
            if (cs.kind != CallSite::Kind::Direct &&
                cs.kind != CallSite::Kind::Qualified &&
                cs.kind != CallSite::Kind::Member) {
                continue;
            }
            std::vector<int> targets = g.resolveCall((int)u, cs);
            int best = -1; // lowest candidate layer
            int bestNode = -1;
            bool any = false;
            for (int t : targets) {
                const CGNode &tn = g.nodes[(size_t)t];
                if (!tn.sf->isSrc)
                    continue;
                int l = moduleLayer(tn.sf->module);
                if (l < 0)
                    continue;
                if (tn.sf->module == node.sf->module) {
                    any = false; // same-module candidate: legal
                    break;
                }
                any = true;
                if (best < 0 || l < best) {
                    best = l;
                    bestNode = t;
                }
            }
            // Flag only when every in-src candidate sits strictly
            // above the caller — conservative against overload
            // collisions across modules.
            if (any && best > callerLayer) {
                const CGNode &tn = g.nodes[(size_t)bestNode];
                diag.report(
                    *node.sf, cs.line, kRule,
                    "call to '" + cs.name + "' resolves into module "
                    "'" +
                        tn.sf->module + "' (layer " +
                        std::to_string(best) +
                        "), above calling module '" +
                        node.sf->module + "' (layer " +
                        std::to_string(callerLayer) +
                        ") — upward calls violate the layering");
            }
        }
    }
}

} // namespace

void
runWholeProgramPass(const Context &ctx, Diagnostics &diag)
{
    CallGraph g = buildCallGraph(ctx.files);
    checkParallelInterproc(g, diag);
    checkHotAllocInterproc(g, diag);
    checkSignalSafety(g, diag);
    checkLayerCall(g, diag);
}

} // namespace ealint
