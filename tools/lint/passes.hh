/**
 * @file
 * The analyzer's passes. Each pass sees every loaded file plus the
 * repo root and reports through the shared Diagnostics sink:
 *
 *  - token:           per-file convention rules (whitespace, guards,
 *                     raw new/delete, stdio, chrono, bare NOLINT)
 *  - include-graph:   parses #include directives across src/, builds
 *                     the module DAG, and enforces the declared
 *                     layering (upward edges and cycles are errors)
 *  - unused-include:  IWYU-lite — a directly included repo header
 *                     none of whose exported symbols appear in the
 *                     including file's token stream
 *  - instrumentation: ties the analyzer to the measurement stack —
 *                     every nn::Module forward/backward opens a trace
 *                     span, every backward states an EA_CHECK* grad
 *                     contract, and src/tensor/ kernels do not grow
 *                     containers inside loops (NOLINT(hot-alloc)
 *                     documents the sanctioned exceptions)
 *  - parallel-region: semantic race detection over parallelFor call
 *                     sites, built on the declaration parser
 *                     (parser.hh): racy by-reference captures,
 *                     escaping scratch() pointers, non-reentrant
 *                     calls, and descending reduction folds
 *  - whole-program:   the cross-TU layer (summary.hh, callgraph.hh):
 *                     interprocedural race and allocation reach for
 *                     parallel regions and hot loops, async-signal-
 *                     safety of the post-mortem handler set, and the
 *                     layering DAG enforced on calls. Needs the whole
 *                     file set — the driver skips it under
 *                     --changed-only unless selected explicitly.
 */

#ifndef EDGEADAPT_TOOLS_LINT_PASSES_HH
#define EDGEADAPT_TOOLS_LINT_PASSES_HH

#include <string>
#include <vector>

#include "diag.hh"
#include "source.hh"

namespace ealint {

/** Shared input to every pass. */
struct Context
{
    std::string repoRoot; ///< absolute, generic separators
    std::vector<SourceFile> files;
};

/** One registered pass. */
struct Pass
{
    const char *name;
    void (*run)(const Context &ctx, Diagnostics &diag);
};

void runTokenPass(const Context &ctx, Diagnostics &diag);
void runIncludeGraphPass(const Context &ctx, Diagnostics &diag);
void runUnusedIncludePass(const Context &ctx, Diagnostics &diag);
void runInstrumentationPass(const Context &ctx, Diagnostics &diag);
void runParallelRegionPass(const Context &ctx, Diagnostics &diag);
void runWholeProgramPass(const Context &ctx, Diagnostics &diag);

/** @return all passes in execution order. */
const std::vector<Pass> &passTable();

/**
 * Layer index of a src/ module in the declared layering, or -1 for a
 * module the layering does not know. Lower layers are more basic; an
 * include may only point to a strictly lower layer (or stay within
 * its own module).
 */
int moduleLayer(const std::string &module);

/** @return "#include" target of @p d when quoted ("nn/x.hh"), else "". */
std::string quotedIncludeTarget(const Directive &d);

} // namespace ealint

#endif // EDGEADAPT_TOOLS_LINT_PASSES_HH
