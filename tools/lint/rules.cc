#include "rules.hh"

namespace ealint {

const std::vector<RuleInfo> &
ruleTable()
{
    static const std::vector<RuleInfo> table = {
        // token pass
        {"tab", Severity::Error, "token",
         "tab characters (indent with spaces)"},
        {"space", Severity::Error, "token", "trailing whitespace"},
        {"crlf", Severity::Error, "token",
         "CRLF line endings (use LF)"},
        {"guard", Severity::Error, "token",
         "include-guard macro must be derived from the file path"},
        {"using-ns", Severity::Error, "token",
         "no 'using namespace' in headers"},
        {"raw-new", Severity::Error, "token",
         "no raw new (placement new is allowed)"},
        {"raw-delete", Severity::Error, "token",
         "no raw delete ('= delete' declarations are allowed)"},
        {"stdio", Severity::Error, "token",
         "no std::cout/printf in src/ (use inform()/warn())"},
        {"chrono", Severity::Error, "token",
         "no std::chrono in src/ outside profile/ and obs/"},
        {"raw-thread", Severity::Error, "token",
         "no std::thread/mutex/condition_variable in src/ outside "
         "base/parallel.* and obs/"},
        {"simd-isolation", Severity::Error, "token",
         "vector intrinsics (immintrin.h/arm_neon.h, __m256/_mm256_/"
         "vld1 families) only under src/tensor/simd/"},
        // "power"/"cap" split so the description string does not
        // itself trip the rule's literal needle.
        {"meter-isolation", Severity::Error, "token",
         "power"
         "cap sysfs paths, perf_event_open and raw syscall() only "
         "under src/obs/energy* and src/obs/perfcount*"},
        {"nolint", Severity::Error, "token",
         "bare NOLINT is rejected; write NOLINT(rule-id)"},
        {"io", Severity::Error, "token", "file cannot be read"},
        // include-graph pass
        {"layer", Severity::Error, "include-graph",
         "module include violates the declared src/ layering"},
        {"layer-cycle", Severity::Error, "include-graph",
         "cyclic dependency between src/ modules"},
        // unused-include pass
        {"unused-include", Severity::Warning, "unused-include",
         "directly included header whose symbols are never used"},
        // instrumentation pass
        {"trace-span", Severity::Error, "instrumentation",
         "nn::Module forward/backward must open an EA_TRACE_SPAN"},
        {"grad-contract", Severity::Error, "instrumentation",
         "nn::Module backward must state an EA_CHECK* grad contract"},
        {"hot-alloc", Severity::Error, "instrumentation",
         "no container growth inside loops in src/tensor/ kernels"},
        {"untracked-alloc", Severity::Error, "instrumentation",
         "float buffers in src/tensor/ and src/nn/ must use the "
         "tracked Tensor/scratch storage path"},
        {"metric-name", Severity::Error, "instrumentation",
         "registry metric names must be lowercase dotted identifiers "
         "(e.g. \"adapt.entropy\")"},
        // parallel-region pass
        {"parallel-capture", Severity::Error, "parallel-region",
         "no unsynchronized write through a by-reference capture in a "
         "parallel lambda (chunk-disjoint indexed writes are allowed)"},
        {"parallel-scratch-escape", Severity::Error, "parallel-region",
         "scratch() pointers are per-thread and must not escape the "
         "parallel lambda"},
        {"parallel-reentrant", Severity::Error, "parallel-region",
         "no calls to non-reentrant functions (rand/strtok/function-"
         "local static state) inside parallel regions"},
        {"parallel-reduction-order", Severity::Error, "parallel-region",
         "reduction folds over per-chunk partials must accumulate in "
         "ascending chunk order (determinism invariant)"},
        // whole-program pass
        {"parallel-interproc", Severity::Error, "whole-program",
         "a parallelFor body must not reach (through any call chain) "
         "a function that writes shared non-atomic state"},
        {"hot-alloc-interproc", Severity::Error, "whole-program",
         "loops in src/tensor/ and src/nn/ must not reach heap "
         "allocation through helper calls"},
        {"signal-safety", Severity::Error, "whole-program",
         "functions reachable from the post-mortem handler set must "
         "be async-signal-safe (no allocation/locks/stdio/throw)"},
        {"layer-call", Severity::Error, "whole-program",
         "calls must respect the declared src/ layering, not just "
         "includes"},
    };
    return table;
}

const RuleInfo *
findRule(const std::string &id)
{
    for (const RuleInfo &r : ruleTable()) {
        if (id == r.id)
            return &r;
    }
    return nullptr;
}

const char *
severityName(Severity sev)
{
    return sev == Severity::Error ? "error" : "warning";
}

} // namespace ealint
