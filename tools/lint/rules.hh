/**
 * @file
 * Rule registry for the edgeadapt static analyzer. Every finding
 * carries a rule id from this table; the table fixes each rule's
 * default severity and one-line summary (shown by --list-rules).
 * Suppression is per-line and per-rule: NOLINT(rule-id). A bare
 * NOLINT is rejected by the "nolint" rule so blanket escapes cannot
 * creep in.
 */

#ifndef EDGEADAPT_TOOLS_LINT_RULES_HH
#define EDGEADAPT_TOOLS_LINT_RULES_HH

#include <string>
#include <vector>

namespace ealint {

enum class Severity { Warning, Error };

/** Static description of one rule. */
struct RuleInfo
{
    const char *id;
    Severity severity;
    const char *pass;    ///< owning pass name (for --pass filtering)
    const char *summary; ///< one-line description
};

/** @return the full rule table (stable order). */
const std::vector<RuleInfo> &ruleTable();

/** @return the rule entry for @p id, or nullptr. */
const RuleInfo *findRule(const std::string &id);

/** @return severity name ("error" / "warning"). */
const char *severityName(Severity sev);

} // namespace ealint

#endif // EDGEADAPT_TOOLS_LINT_RULES_HH
