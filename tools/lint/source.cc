#include "source.hh"

#include <cctype>
#include <fstream>
#include <sstream>

namespace ealint {

namespace {

/**
 * Parse NOLINT markers in one line's worth of comment text. A scoped
 * same-line marker names the rules it exempts on its own line:
 * NOLINT(rule-a, rule-b); the NEXTLINE spelling exempts them on the
 * line below instead. A bare marker of either spelling (no rule list)
 * is recorded separately so the nolint rule can reject it. Same-line
 * markers only count on lines that carry code or a directive (@p
 * lineHasCode) — prose that merely discusses NOLINT syntax suppresses
 * nothing and is not a finding — while the NEXTLINE form is honored
 * on comment-only lines too, since standing alone above the code it
 * exempts is its whole point.
 */
void
parseNolint(const std::string &line, int ln, bool lineHasCode,
            SourceFile &sf)
{
    size_t pos = 0;
    while ((pos = line.find("NOLINT", pos)) != std::string::npos) {
        // Whole-word on the left so EA_NOLINT-ish names don't match.
        if (pos > 0 && isWordChar(line[pos - 1])) {
            pos += 6;
            continue;
        }
        size_t after = pos + 6;
        bool nextLine = line.compare(after, 8, "NEXTLINE") == 0;
        if (nextLine)
            after += 8;
        if (!nextLine && !lineHasCode) {
            pos = after;
            continue;
        }
        int target = nextLine ? ln + 1 : ln;
        if (after < line.size() && line[after] == '(') {
            size_t close = line.find(')', after);
            std::string list =
                close == std::string::npos
                    ? line.substr(after + 1)
                    : line.substr(after + 1, close - after - 1);
            std::string cur;
            auto flush = [&]() {
                if (!cur.empty()) {
                    sf.nolint[target].insert(cur);
                    sf.nolintDecls.emplace_back(ln, cur);
                }
                cur.clear();
            };
            for (char c : list) {
                if (c == ',')
                    flush();
                else if (!std::isspace((unsigned char)c))
                    cur += c;
            }
            flush();
            pos = close == std::string::npos ? line.size() : close;
        } else if (after < line.size() && isWordChar(line[after])) {
            // NOLINTBLAH and friends: treat as bare (unsupported).
            sf.bareNolint.push_back(ln);
            pos = after;
        } else {
            sf.bareNolint.push_back(ln);
            pos = after;
        }
    }
}

} // namespace

bool
SourceFile::suppressed(int line, const std::string &rule) const
{
    auto it = nolint.find(line);
    return it != nolint.end() && it->second.count(rule) > 0;
}

std::string
srcModule(const std::string &pathUnderSrc)
{
    if (pathUnderSrc.rfind("base/parallel.", 0) == 0)
        return "parallel";
    size_t slash = pathUnderSrc.find('/');
    if (slash == std::string::npos || slash == 0)
        return "";
    return pathUnderSrc.substr(0, slash);
}

bool
loadSourceFile(const std::string &absPath, const std::string &rel,
               SourceFile &out)
{
    out.absPath = absPath;
    out.rel = rel;
    out.isHeader = rel.size() > 3 && rel.rfind(".hh") == rel.size() - 3;
    out.isSrc = rel.rfind("src/", 0) == 0;
    if (out.isSrc)
        out.module = srcModule(rel.substr(4));

    std::ifstream in(absPath, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out.raw = buf.str();

    std::string cur;
    auto pushLine = [&]() {
        out.rawLines.push_back(cur);
        int ln = (int)out.rawLines.size();
        if (!cur.empty() && cur.back() == '\r') {
            ++out.crlfLines;
            if (!out.firstCrlfLine)
                out.firstCrlfLine = ln;
        }
        cur.clear();
    };
    for (char c : out.raw) {
        if (c == '\n')
            pushLine();
        else
            cur += c;
    }
    if (!cur.empty())
        pushLine();

    out.lex = lex(out.raw);

    // NOLINT markers live in comments. Same-line markers only count
    // on lines that carry code or a directive (on a comment-only line
    // they suppress nothing and are inert documentation);
    // NEXTLINE-form markers count anywhere.
    std::set<int> codeLines;
    for (const Token &t : out.lex.tokens)
        codeLines.insert(t.line);
    for (const Directive &d : out.lex.directives)
        codeLines.insert(d.line);
    for (const Comment &c : out.lex.comments) {
        int ln = c.line;
        std::string line;
        for (char ch : c.text + "\n") {
            if (ch != '\n') {
                line += ch;
                continue;
            }
            parseNolint(line, ln, codeLines.count(ln) > 0, out);
            line.clear();
            ++ln;
        }
    }
    return true;
}

} // namespace ealint
