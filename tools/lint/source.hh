/**
 * @file
 * Source-file model for the edgeadapt static analyzer: raw text,
 * per-line views, the token stream, and the per-line suppression map
 * parsed from NOLINT(rule, ...) comments. Every pass works from this
 * one representation so a file is read and lexed exactly once.
 */

#ifndef EDGEADAPT_TOOLS_LINT_SOURCE_HH
#define EDGEADAPT_TOOLS_LINT_SOURCE_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hh"

namespace ealint {

/** One analyzed file. */
struct SourceFile
{
    std::string absPath; ///< filesystem path used for I/O
    std::string rel;     ///< repo-relative path (generic separators)
    std::string raw;     ///< file bytes as read

    /** Lines split on '\n'; a trailing '\r' is kept (see crlfLines). */
    std::vector<std::string> rawLines;

    LexResult lex; ///< shared token stream + directives

    /** line -> rule ids suppressed on that line, whether the marker
     *  was on the line itself or a NEXTLINE marker above it. */
    std::map<int, std::set<std::string>> nolint;

    /** Every rule id named by a marker, at the marker's own line —
     *  this is what unknown-id rejection reports against (a
     *  NEXTLINE marker suppresses the line below, but the bad id
     *  should be flagged where it was written). */
    std::vector<std::pair<int, std::string>> nolintDecls;

    /** Lines carrying a bare NOLINT (no rule list) — itself a finding. */
    std::vector<int> bareNolint;

    int crlfLines = 0;     ///< number of lines ending in "\r\n"
    int firstCrlfLine = 0; ///< 1-based line of the first CRLF ending

    bool isHeader = false; ///< .hh
    bool isSrc = false;    ///< rel starts with "src/"

    /** First path component under src/ ("tensor", ...), else "". */
    std::string module;

    /** @return true when @p rule is suppressed on @p line. */
    bool suppressed(int line, const std::string &rule) const;
};

/**
 * Module a path under src/ belongs to, normally its first path
 * component ("tensor/gemm.cc" -> "tensor"). The one exception is the
 * pseudo-module "parallel": src/base/parallel.{hh,cc} house the
 * thread pool, which sits between obs and tensor in the declared
 * layering even though the files live in the base directory.
 */
std::string srcModule(const std::string &pathUnderSrc);

/**
 * Read and lex @p absPath. @return false (leaving @p out partially
 * filled with the paths) when the file cannot be read.
 */
bool loadSourceFile(const std::string &absPath, const std::string &rel,
                    SourceFile &out);

} // namespace ealint

#endif // EDGEADAPT_TOOLS_LINT_SOURCE_HH
