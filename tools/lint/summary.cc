/**
 * @file
 * FnSummary extraction: one linear token walk per function/lambda
 * body, with nested lambda bodies and static-local initializers
 * carved out as skip intervals. See summary.hh for the approximation
 * contract the heuristics implement.
 */

#include "summary.hh"

#include <algorithm>
#include <unordered_set>

namespace ealint {

namespace {

/** Index just past the closer matching the opener at @p i. */
size_t
matchForward(const std::vector<Token> &toks, size_t i, const char *open,
             const char *close)
{
    int depth = 0;
    for (; i < toks.size(); ++i) {
        if (toks[i].is(open))
            ++depth;
        else if (toks[i].is(close) && --depth == 0)
            return i + 1;
    }
    return toks.size();
}

/**
 * Treat '<' at @p i as a template-argument group. @return index past
 * the matching '>', or 0 when no balanced '>' appears before a
 * top-level ';', '{' or '}' (a comparison, then).
 */
size_t
matchTemplateArgs(const std::vector<Token> &toks, size_t i)
{
    int depth = 0;
    for (; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.is("<")) {
            ++depth;
        } else if (t.is(">")) {
            if (--depth == 0)
                return i + 1;
        } else if (t.is("(")) {
            i = matchForward(toks, i, "(", ")") - 1;
        } else if (t.is(";") || t.is("{") || t.is("}")) {
            return 0;
        }
    }
    return 0;
}

/** Index of the opener matching the closer at @p i (or npos). */
size_t
matchBackward(const std::vector<Token> &toks, size_t i, const char *open,
              const char *close)
{
    int depth = 0;
    for (size_t j = i + 1; j-- > 0;) {
        if (toks[j].is(close))
            ++depth;
        else if (toks[j].is(open) && --depth == 0)
            return j;
        if (j == 0)
            break;
    }
    return (size_t)-1;
}

bool
isControlish(const std::string &s)
{
    return s == "if" || s == "for" || s == "while" || s == "switch" ||
           s == "return" || s == "sizeof" || s == "catch" ||
           s == "alignof" || s == "alignas" || s == "decltype" ||
           s == "static_assert" || s == "noexcept" ||
           s == "static_cast" || s == "dynamic_cast" ||
           s == "const_cast" || s == "reinterpret_cast" ||
           s == "throw" || s == "new" || s == "delete" ||
           s == "assert" || s == "defined";
}

const std::unordered_set<std::string> &
mallocFamily()
{
    static const std::unordered_set<std::string> s = {
        "malloc",      "calloc",        "realloc",
        "aligned_alloc", "strdup",      "posix_memalign",
        "make_unique", "make_shared",   "make_unique_for_overwrite",
    };
    return s;
}

const std::unordered_set<std::string> &
growthCalls()
{
    static const std::unordered_set<std::string> s = {
        "push_back", "emplace_back", "resize",  "reserve",
        "insert",    "emplace",      "assign",  "append",
    };
    return s;
}

const std::unordered_set<std::string> &
allocatingTypes()
{
    static const std::unordered_set<std::string> s = {
        "vector", "string", "deque", "map", "unordered_map", "set",
        "unordered_set", "Tensor",
    };
    return s;
}

const std::unordered_set<std::string> &
lockGuardTypes()
{
    static const std::unordered_set<std::string> s = {
        "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
    };
    return s;
}

const std::unordered_set<std::string> &
stdioCalls()
{
    static const std::unordered_set<std::string> s = {
        "printf", "fprintf", "vfprintf", "sprintf",  "snprintf",
        "vsnprintf", "puts", "fputs",    "putc",     "fputc",
        "putchar", "fopen",  "fclose",   "fflush",   "fread",
        "fwrite",  "fgets",  "fgetc",    "getc",     "getchar",
        "scanf",   "fscanf", "sscanf",   "perror",   "fseek",
        "ftell",   "rewind", "tmpfile",  "vprintf",
    };
    return s;
}

/** Same list the per-file parallel-reentrant rule uses. */
const std::unordered_set<std::string> &
libcUnsafeCalls()
{
    static const std::unordered_set<std::string> s = {
        "rand",   "srand",     "strtok", "asctime", "ctime",
        "gmtime", "localtime", "setlocale", "tmpnam",
    };
    return s;
}

/** Token intervals [begin, end) to exclude from a body walk. */
struct SkipSet
{
    std::vector<std::pair<size_t, size_t>> iv;

    void
    add(size_t b, size_t e)
    {
        if (b < e)
            iv.push_back({b, e});
    }

    void
    seal()
    {
        std::sort(iv.begin(), iv.end());
    }

    /** @return end of the interval covering @p i, or 0. */
    size_t
    coveredUntil(size_t i) const
    {
        for (const auto &p : iv) {
            if (p.first > i)
                break;
            if (i < p.second)
                return p.second;
        }
        return 0;
    }
};

struct Summarizer
{
    const SourceFile &sf;
    const FileScopes &scopes;
    const std::vector<Token> &toks;

    /** Token indices that are declared names (skip ctor-call shapes). */
    std::unordered_set<size_t> declToks;

    Summarizer(const SourceFile &f, const FileScopes &sc)
        : sf(f), scopes(sc), toks(f.lex.tokens)
    {
        for (const Scope &s : sc.scopes)
            for (const VarDecl &d : s.decls)
                declToks.insert(d.tok);
    }

    bool is(size_t i, const char *t) const
    {
        return i < toks.size() && toks[i].is(t);
    }
    bool isIdent(size_t i) const
    {
        return i < toks.size() &&
               toks[i].kind == Token::Kind::Identifier;
    }

    /** @return true when scope @p s is (in) the unit @p unit without
     *  crossing into a nested function/lambda. */
    bool
    directlyInUnit(int s, int unit) const
    {
        for (; s >= 0; s = scopes.scopes[(size_t)s].parent) {
            if (s == unit)
                return true;
            Scope::Kind k = scopes.scopes[(size_t)s].kind;
            if (k == Scope::Kind::Function || k == Scope::Kind::Lambda)
                return false;
        }
        return false;
    }

    /** Build the skip set for @p unit: nested callable bodies plus
     *  static-local declarations with their initializers. */
    SkipSet
    buildSkips(int unit) const
    {
        SkipSet sk;
        const Scope &u = scopes.scopes[(size_t)unit];
        for (size_t s = 0; s < scopes.scopes.size(); ++s) {
            const Scope &c = scopes.scopes[s];
            if ((int)s == unit)
                continue;
            if (c.kind != Scope::Kind::Function &&
                c.kind != Scope::Kind::Lambda)
                continue;
            if (c.bodyBegin >= u.bodyBegin && c.bodyEnd <= u.bodyEnd)
                sk.add(c.bodyBegin, c.bodyEnd);
        }
        // One-time static initialization is not a per-call effect.
        for (size_t s = 0; s < scopes.scopes.size(); ++s) {
            if (!directlyInUnit((int)s, unit) && (int)s != unit)
                continue;
            for (const VarDecl &d : scopes.scopes[s].decls) {
                if (d.isStatic && d.initEnd > d.initBegin)
                    sk.add(d.tok, d.initEnd);
            }
        }
        sk.seal();
        return sk;
    }

    /** Loop-body token intervals inside [b, e). */
    std::vector<std::pair<size_t, size_t>>
    loopRanges(size_t b, size_t e) const
    {
        std::vector<std::pair<size_t, size_t>> out;
        for (size_t i = b; i < e; ++i) {
            if (!isIdent(i))
                continue;
            const std::string &t = toks[i].text;
            size_t open = 0, close = 0;
            if ((t == "for" || t == "while") && is(i + 1, "(")) {
                size_t past = matchForward(toks, i + 1, "(", ")");
                open = i + 1;
                if (is(past, "{"))
                    close = matchForward(toks, past, "{", "}");
                else {
                    close = past;
                    while (close < e && !toks[close].is(";"))
                        ++close;
                }
            } else if (t == "do" && is(i + 1, "{")) {
                open = i + 1;
                close = matchForward(toks, i + 1, "{", "}");
            }
            if (close > open)
                out.push_back({open, std::min(close, e)});
        }
        return out;
    }

    static bool
    inAny(const std::vector<std::pair<size_t, size_t>> &iv, size_t i)
    {
        for (const auto &p : iv)
            if (i >= p.first && i < p.second)
                return true;
        return false;
    }

    // ---- writes -----------------------------------------------------

    /**
     * Walk backward from @p lhsEnd (last token of an lvalue) to its
     * root identifier. @p through reports whether the write went
     * through a subscript, field access, or dereference. @return the
     * root token index, or npos for expression receivers.
     */
    size_t
    lvalueRoot(size_t lhsEnd, bool *through) const
    {
        *through = false;
        size_t p = lhsEnd;
        while (true) {
            if (p >= toks.size())
                return (size_t)-1;
            if (toks[p].is("]")) {
                size_t open = matchBackward(toks, p, "[", "]");
                if (open == (size_t)-1 || open == 0)
                    return (size_t)-1;
                *through = true;
                p = open - 1;
                continue;
            }
            if (!isIdent(p))
                return (size_t)-1;
            // Continue through "a.b" / "a->b" chains to the root.
            if (p >= 2 && toks[p - 1].is(".") && isIdent(p - 2)) {
                *through = true;
                p = p - 2;
                continue;
            }
            if (p >= 3 && isPunctSeq(toks, p - 2, "->")) {
                *through = true;
                p = p - 3;
                continue;
            }
            // A qualified root (Foo::x) is a foreign name; skip.
            if (p >= 2 && isPunctSeq(toks, p - 2, "::"))
                return (size_t)-1;
            // "*p = ..." writes through the pointer.
            if (p >= 1 && toks[p - 1].is("*") &&
                !(p >= 2 && (isIdent(p - 2) || toks[p - 2].is(")") ||
                             toks[p - 2].is("]")))) {
                *through = true;
            }
            return p;
        }
    }

    void
    recordWrite(FnSummary &fs, int unit, size_t root, bool through)
    {
        const std::string &name = toks[root].text;
        int scope = scopes.enclosing(root);
        int found = -1;
        const VarDecl *v = scopes.resolve(scope, name, root + 1, &found);
        if (!v) {
            if (name == "errno")
                fs.usesErrno = true;
            else if (!fs.qualifier.empty())
                fs.writesMember = true;
            return;
        }
        if (v->isAtomic || v->isThreadLocal)
            return;
        if (v->isParam) {
            bool writable = through
                                ? (v->isPointer || v->isRef) &&
                                      !v->pointeeConst
                                : v->isRef && !v->selfConst;
            if (writable && v->paramIndex >= 0 &&
                directlyInUnit(found, unit)) {
                fs.writesParamIdx.insert(v->paramIndex);
            }
            return;
        }
        if (found == 0) {
            // File/namespace-scope variable (namespaces are
            // transparent, so their decls live in the File scope).
            if (!v->selfConst)
                fs.globalWrites.push_back({toks[root].line, name});
            return;
        }
        if (v->isStatic && !v->selfConst)
            fs.staticLocalWrites.push_back({toks[root].line, name});
    }

    /** Detect "lhs op= rhs" / "++lhs" at token @p i; @return tokens
     *  consumed (0 when not a write). */
    size_t
    tryWrite(FnSummary &fs, int unit, size_t i)
    {
        // Prefix increment/decrement.
        if ((isPunctSeq(toks, i, "++") || isPunctSeq(toks, i, "--")) &&
            isIdent(i + 2)) {
            bool through = false;
            recordWrite(fs, unit, i + 2, through);
            return 3;
        }
        // Postfix increment/decrement.
        if ((isPunctSeq(toks, i, "++") || isPunctSeq(toks, i, "--")) &&
            i > 0 && (isIdent(i - 1) || toks[i - 1].is("]"))) {
            bool through = false;
            size_t root = lvalueRoot(i - 1, &through);
            if (root != (size_t)-1)
                recordWrite(fs, unit, root, through);
            return 2;
        }
        if (!toks[i].is("="))
            return 0;
        if (is(i + 1, "=")) // '=='
            return 2;
        size_t lhsEnd = i;
        // Compound assignment: the '=' is preceded by the operator
        // character(s), which are preceded by the lvalue.
        static const char ops[] = "+-*/%&|^<>";
        while (lhsEnd > 0 &&
               toks[lhsEnd - 1].kind == Token::Kind::Punct &&
               toks[lhsEnd - 1].text.size() == 1 &&
               std::string(ops).find(toks[lhsEnd - 1].text[0]) !=
                   std::string::npos) {
            --lhsEnd;
        }
        if (lhsEnd != i) {
            // "a != b" / "a <= b" comparisons are not writes.
            char c = toks[lhsEnd].text[0];
            if (i - lhsEnd == 1 && (c == '<' || c == '>'))
                return 0;
            if (i - lhsEnd == 1 && toks[lhsEnd].is("!"))
                return 0;
        }
        if (lhsEnd == 0)
            return 1;
        bool through = false;
        size_t root = lvalueRoot(lhsEnd - 1, &through);
        if (root != (size_t)-1 && !declToks.count(root))
            recordWrite(fs, unit, root, through);
        return 1;
    }

    // ---- calls ------------------------------------------------------

    void
    recordCall(FnSummary &fs, size_t i, size_t paren,
               const std::vector<std::pair<size_t, size_t>> &loops)
    {
        CallSite cs;
        cs.name = toks[i].text;
        cs.line = toks[i].line;
        cs.tok = i;
        cs.argBegin = paren + 1;
        cs.argEnd = matchForward(toks, paren, "(", ")") - 1;
        cs.inLoop = inAny(loops, i);

        if (i >= 2 && isPunctSeq(toks, i - 2, "::")) {
            if (i >= 3 && isIdent(i - 3)) {
                cs.kind = CallSite::Kind::Qualified;
                cs.qualifier = toks[i - 3].text;
            } else {
                cs.kind = CallSite::Kind::GlobalQual;
            }
        } else if (i >= 2 && toks[i - 1].is(".")) {
            // Simple receiver only: "x.f(...)" with x a plain name.
            // Everything else ("r[i].size()", "path().empty()",
            // "a.b.c()") is an expression chain: growth calls only.
            if (!isIdent(i - 2) ||
                (i >= 4 &&
                 (toks[i - 3].is(".") || toks[i - 3].is(")") ||
                  toks[i - 3].is("]") ||
                  isPunctSeq(toks, i - 4, "->")))) {
                trackAllocCall(fs, cs); // chains: growth calls only
                return;
            }
            const VarDecl *v = scopes.resolve(scopes.enclosing(i),
                                              toks[i - 2].text, i,
                                              nullptr);
            if (!v || v->typeName.empty()) {
                trackAllocCall(fs, cs);
                return;
            }
            cs.kind = CallSite::Kind::Member;
            cs.qualifier = v->typeName;
        } else if (i >= 3 && isPunctSeq(toks, i - 2, "->")) {
            if (toks[i - 3].isIdent("this") && !fs.qualifier.empty()) {
                cs.kind = CallSite::Kind::Member;
                cs.qualifier = fs.qualifier;
            } else if (isIdent(i - 3) &&
                       !(i >= 5 && (toks[i - 4].is(".") ||
                                    isPunctSeq(toks, i - 5, "->")))) {
                const VarDecl *v = scopes.resolve(scopes.enclosing(i),
                                                  toks[i - 3].text, i,
                                                  nullptr);
                if (!v || v->typeName.empty()) {
                    trackAllocCall(fs, cs);
                    return;
                }
                cs.kind = CallSite::Kind::Member;
                cs.qualifier = v->typeName;
            } else {
                trackAllocCall(fs, cs);
                return;
            }
        } else {
            int from = scopes.enclosing(i);
            int lam = scopes.lambdaByName(from, cs.name);
            const VarDecl *v =
                scopes.resolve(from, cs.name, i, nullptr);
            if (lam >= 0) {
                cs.kind = CallSite::Kind::LambdaVar;
                cs.lambdaScope = lam;
            } else if (v && v->isParam) {
                // A parameter callback (own or captured from the
                // lexically enclosing function) is accounted for at
                // the enclosing function's call sites, where the
                // call-graph layer adds may-invoke edges for named
                // arguments; only data variables are truly unknown.
                cs.kind = CallSite::Kind::CallbackParam;
            } else if (v) {
                cs.kind = CallSite::Kind::Indirect;
                fs.indirectCalls.push_back({cs.line, cs.name});
            } else {
                cs.kind = CallSite::Kind::Direct;
            }
        }

        if (cs.name == "parallelFor")
            fs.callsParallelFor = true;

        trackAllocCall(fs, cs);
        trackEffectCall(fs, cs);
        collectArgs(cs);
        fs.calls.push_back(std::move(cs));
    }

    /** Growth/allocation classification shared by all call shapes. */
    void
    trackAllocCall(FnSummary &fs, const CallSite &cs)
    {
        if (growthCalls().count(cs.name) &&
            (cs.kind == CallSite::Kind::Member ||
             cs.kind == CallSite::Kind::Direct)) {
            fs.allocs.push_back({cs.line, cs.name + "()"});
        }
        if (mallocFamily().count(cs.name))
            fs.allocs.push_back({cs.line, cs.name + "()"});
    }

    void
    trackEffectCall(FnSummary &fs, const CallSite &cs)
    {
        if (cs.name == "pthread_mutex_lock" ||
            cs.name == "pthread_mutex_unlock") {
            fs.lockUses.push_back({cs.line, cs.name + "()"});
        }
        if ((cs.name == "lock" || cs.name == "unlock" ||
             cs.name == "try_lock") &&
            cs.kind == CallSite::Kind::Member &&
            cs.qualifier.find("mutex") != std::string::npos) {
            fs.lockUses.push_back({cs.line, cs.name + "()"});
        }
        if (stdioCalls().count(cs.name))
            fs.stdioUses.push_back({cs.line, cs.name + "()"});
        if (libcUnsafeCalls().count(cs.name))
            fs.libcUnsafe.push_back({cs.line, cs.name + "()"});
    }

    void
    collectArgs(CallSite &cs) const
    {
        int index = 0;
        size_t i = cs.argBegin;
        while (i < cs.argEnd) {
            size_t aEnd = i;
            int depth = 0;
            while (aEnd < cs.argEnd) {
                const Token &t = toks[aEnd];
                if (t.is("(") || t.is("[") || t.is("{"))
                    ++depth;
                else if (t.is(")") || t.is("]") || t.is("}"))
                    --depth;
                else if (t.is(",") && depth == 0)
                    break;
                ++aEnd;
            }
            if (aEnd == i + 1 && isIdent(i)) {
                cs.bareArgs.push_back(
                    {toks[i].text, index, false, i});
            } else if (aEnd == i + 2 && toks[i].is("&") &&
                       isIdent(i + 1)) {
                cs.bareArgs.push_back(
                    {toks[i + 1].text, index, true, i + 1});
            }
            ++index;
            i = aEnd + 1;
        }
    }

    // ---- the walk ---------------------------------------------------

    FnSummary
    summarize(int unit)
    {
        const Scope &u = scopes.scopes[(size_t)unit];
        FnSummary fs;
        fs.scope = unit;
        fs.name = u.name;
        fs.qualifier = u.qualifier;
        fs.nsPath = u.nsPath;
        fs.isLambda = u.kind == Scope::Kind::Lambda;
        fs.line = u.line;

        SkipSet sk = buildSkips(unit);
        auto loops = loopRanges(u.bodyBegin, u.bodyEnd);

        // Allocation by construction: local containers/Tensors.
        for (size_t s = 0; s < scopes.scopes.size(); ++s) {
            if ((int)s != unit && !directlyInUnit((int)s, unit))
                continue;
            for (const VarDecl &d : scopes.scopes[s].decls) {
                if (d.isParam || d.isStatic || d.isRef || d.isPointer)
                    continue;
                if (allocatingTypes().count(d.typeName)) {
                    fs.allocs.push_back(
                        {d.line, d.typeName + " " + d.name});
                }
                if (lockGuardTypes().count(d.typeName))
                    fs.lockUses.push_back(
                        {d.line, d.typeName + " " + d.name});
            }
        }

        for (size_t i = u.bodyBegin; i < u.bodyEnd;) {
            size_t until = sk.coveredUntil(i);
            if (until) {
                i = until;
                continue;
            }
            const Token &t = toks[i];
            if (t.kind == Token::Kind::Identifier) {
                if (t.text == "throw") {
                    fs.throwSites.push_back({t.line, "throw"});
                    ++i;
                    continue;
                }
                if (t.text == "new" &&
                    !(i > 0 && (toks[i - 1].is(".") ||
                                isPunctSeq(toks, i - 1, "::")))) {
                    fs.allocs.push_back({t.line, "new"});
                    ++i;
                    continue;
                }
                if ((t.text == "cout" || t.text == "cerr" ||
                     t.text == "clog" || t.text == "cin")) {
                    fs.stdioUses.push_back({t.line, t.text});
                    ++i;
                    continue;
                }
                if (t.text == "errno") {
                    fs.usesErrno = true;
                    ++i;
                    continue;
                }
                if ((t.text == "sa_handler" ||
                     t.text == "sa_sigaction") &&
                    is(i + 1, "=") && !is(i + 2, "=")) {
                    size_t r = i + 2;
                    if (is(r, "&"))
                        ++r;
                    if (isIdent(r))
                        fs.handlerAssigns.push_back(toks[r].text);
                    i = r + 1;
                    continue;
                }
                size_t paren = i + 1;
                if (is(paren, "<")) {
                    // "make_unique<float[]>(...)" and friends.
                    size_t past = matchTemplateArgs(toks, paren);
                    if (past && is(past, "("))
                        paren = past;
                }
                if (is(paren, "(") && !isControlish(t.text) &&
                    !declToks.count(i)) {
                    recordCall(fs, i, paren, loops);
                    ++i;
                    continue;
                }
                ++i;
                continue;
            }
            if (t.kind == Token::Kind::Punct) {
                size_t n = tryWrite(fs, unit, i);
                if (n) {
                    i += n;
                    continue;
                }
            }
            ++i;
        }
        return fs;
    }
};

} // namespace

const FnSummary *
FileSummary::byScope(int scope) const
{
    for (const FnSummary &f : fns)
        if (f.scope == scope)
            return &f;
    return nullptr;
}

FileSummary
summarizeFile(const SourceFile &sf)
{
    FileSummary out;
    out.sf = &sf;
    out.scopes = parseScopes(sf.lex);
    Summarizer sm(sf, out.scopes);
    for (size_t s = 0; s < out.scopes.scopes.size(); ++s) {
        Scope::Kind k = out.scopes.scopes[s].kind;
        if (k == Scope::Kind::Function || k == Scope::Kind::Lambda)
            out.fns.push_back(sm.summarize((int)s));
    }
    return out;
}

} // namespace ealint
