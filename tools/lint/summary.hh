/**
 * @file
 * Per-function effect summaries for the whole-program analysis layer.
 *
 * For every function and lambda scope recovered by the declaration
 * parser (parser.hh), summarizeFile() extracts a FnSummary: the
 * side-effect facts the interprocedural rules consume (writes to
 * globals / file statics / by-reference parameters, heap allocation,
 * lock and stdio use, non-reentrant libc calls, throw statements) plus
 * every call site with enough syntactic context for the call-graph
 * layer (callgraph.hh) to resolve it across translation units.
 *
 * The extraction deliberately mirrors the analyzer's house style:
 * token-shape heuristics tuned so the real tree is provably clean
 * while seeded violations still fire. The known approximations are
 *
 *  - writes through non-parameter local pointers are invisible (the
 *    pointee is unknown; reporting would flood every blocked kernel),
 *  - member calls resolve only through a receiver whose declared type
 *    the parser recovered ("PmOut w; w.flush()"), never through
 *    expression receivers or casts,
 *  - a lambda's body is summarized as its own unit, not folded into
 *    the enclosing function; the call graph connects the two with a
 *    may-invoke edge when the lambda is passed as a call argument,
 *  - the initializer of a function-local static is one-time work and
 *    is excluded from the body scan (guarded initialization is not a
 *    per-call effect).
 *
 * Suppression stays at the rule layer: every recorded effect carries
 * its line so a rule can honor NOLINT(rule) at the effect site.
 */

#ifndef EDGEADAPT_TOOLS_LINT_SUMMARY_HH
#define EDGEADAPT_TOOLS_LINT_SUMMARY_HH

#include <set>
#include <string>
#include <vector>

#include "parser.hh"
#include "source.hh"

namespace ealint {

/** One identifier-only call argument ("f(x, &g, a + b)" keeps x, g). */
struct CallArg
{
    std::string name;
    int index = 0;         ///< 0-based argument position
    bool addressOf = false; ///< spelled &name
    size_t tok = 0;         ///< token index of the identifier
};

/** One call site inside a summarized body. */
struct CallSite
{
    enum class Kind
    {
        Direct,        ///< f(...) — plain name, resolved cross-TU
        Qualified,     ///< ns::f(...) / Class::f(...)
        GlobalQual,    ///< ::f(...) — global namespace (libc wrappers)
        Member,        ///< x.f(...) with a parser-known receiver type
        LambdaVar,     ///< f names "auto f = [...]" in scope
        CallbackParam, ///< f is a parameter of the enclosing callable
        Indirect,      ///< f is a data variable: pointer, assume worst
    };

    Kind kind = Kind::Direct;
    std::string name;      ///< callee name token
    std::string qualifier; ///< namespace / class / receiver type
    int line = 0;
    size_t tok = 0;       ///< token index of the callee name
    size_t argBegin = 0;  ///< token range between the call parens
    size_t argEnd = 0;
    int lambdaScope = -1; ///< LambdaVar: scope index of the lambda
    bool inLoop = false;  ///< sits inside a for/while/do body
    std::vector<CallArg> bareArgs;
};

/** One recorded side effect with its suppression anchor. */
struct Effect
{
    int line = 0;
    std::string what; ///< variable / callee / token for the message
};

/** Effect summary of one function or lambda body. */
struct FnSummary
{
    int scope = -1; ///< index into the file's FileScopes
    std::string name;
    std::string qualifier; ///< class for members, see Scope::qualifier
    std::string nsPath;
    bool isLambda = false;
    int line = 0;

    // -- own effects (this body only; nested lambdas excluded) -------
    std::vector<Effect> globalWrites;      ///< non-atomic file-scope vars
    std::vector<Effect> staticLocalWrites; ///< own mutable static locals
    std::vector<Effect> allocs;            ///< new/malloc/growth/containers
    std::vector<Effect> lockUses;          ///< mutex guards, pthread locks
    std::vector<Effect> stdioUses;         ///< printf family, iostreams
    std::vector<Effect> libcUnsafe;        ///< rand/strtok/setlocale/...
    std::vector<Effect> throwSites;
    std::vector<Effect> indirectCalls; ///< calls through data pointers
    bool writesMember = false; ///< unresolved root inside a member fn
    bool usesErrno = false;
    bool callsParallelFor = false;

    /** Parameter indices written directly (deref/subscript/ref). */
    std::set<int> writesParamIdx;

    /** Function names assigned to .sa_handler / .sa_sigaction. */
    std::vector<std::string> handlerAssigns;

    std::vector<CallSite> calls;
};

/** Summaries of one file, aligned with its scope tree. */
struct FileSummary
{
    const SourceFile *sf = nullptr;
    FileScopes scopes;

    /** One summary per Function/Lambda scope, scope-index order. */
    std::vector<FnSummary> fns;

    /** @return summary whose scope index is @p scope, or nullptr. */
    const FnSummary *byScope(int scope) const;
};

/** Parse and summarize every function/lambda body of @p sf. */
FileSummary summarizeFile(const SourceFile &sf);

} // namespace ealint

#endif // EDGEADAPT_TOOLS_LINT_SUMMARY_HH
