#!/usr/bin/env bash
# Regenerate tests/lint/expected.json, the golden report the
# lint_selftest ctest compares byte-for-byte (tests/lint/run_golden.cmake).
#
# The report is already deterministic — findings are stable-sorted by
# (file, line, rule, message) before emission — so the golden is
# exactly one analyzer run over the fixture mini-repo with the same
# flags the selftest uses. Run this after adding a rule, a fixture, or
# changing a diagnostic message, then review the diff like any other
# code change: every added/removed finding must be explainable by your
# change.
#
# Usage:  tools/lint/update_golden.sh [BUILD_DIR]
# BUILD_DIR defaults to "build"; the analyzer is built if missing.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/../.." && pwd)"
build_dir="${1:-$repo_root/build}"
lint_bin="$build_dir/tools/edgeadapt_lint"
fixtures="$repo_root/tests/lint/fixtures"
golden="$repo_root/tests/lint/expected.json"

if [[ ! -x "$lint_bin" ]]; then
    echo "update_golden: building edgeadapt_lint in $build_dir" >&2
    cmake -B "$build_dir" -S "$repo_root" >/dev/null
    cmake --build "$build_dir" --target edgeadapt_lint -j >/dev/null
fi

# rc=1 (errors found) is the expected fixture outcome; anything else
# means the fixture tree or the analyzer is broken — don't write a
# bogus golden over the good one.
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
rc=0
"$lint_bin" --repo-root "$fixtures" --format=json "$fixtures" \
    > "$tmp" || rc=$?
if [[ "$rc" != 1 ]]; then
    echo "update_golden: analyzer exited $rc (expected 1); golden" \
         "left untouched" >&2
    exit 1
fi

if cmp -s "$tmp" "$golden"; then
    echo "update_golden: $golden already up to date"
else
    cp "$tmp" "$golden"
    echo "update_golden: wrote $golden — review with: git diff $golden"
fi
