/**
 * @file
 * Artifact browser for the observability layer: pretty-prints,
 * validates, merges, and diffs the two crash/telemetry schemas —
 * "edgeadapt.telemetry.v1" JSONL streams (SnapshotWriter) and
 * "postmortem.v1" crash dumps (installPostmortemHandlers).
 *
 * Usage:
 *   obs_report FILE...              pretty-print each artifact
 *   obs_report --check FILE...      validate schemas; exit 1 on any
 *                                   malformed document
 *   obs_report --merge FILE...      merge telemetry streams into one
 *                                   t_ns-ordered JSONL on stdout
 *   obs_report --diff FILE_A FILE_B compare the final telemetry
 *                                   snapshots (or post-mortem metric
 *                                   sections) of two artifacts
 *
 * Exit status: 0 = ok, 1 = validation failure (--check) or malformed
 * input, 2 = usage error.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hh"

using edgeadapt::obs::JsonValue;
using edgeadapt::obs::jsonParse;

namespace {

bool
readFile(const std::string &path, std::string *out)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out->append(buf, n);
    bool ok = !std::ferror(f);
    std::fclose(f);
    return ok;
}

/** One parsed document plus the raw line it came from. */
struct Doc
{
    JsonValue value;
    std::string raw;
    int line = 0; ///< 1-based line in the source file (0 = whole file)
};

/**
 * Load an artifact file: JSONL (one object per non-empty line) or a
 * single whole-file JSON document. @return false with a message on
 * stderr when anything fails to parse.
 */
bool
loadDocs(const std::string &path, std::vector<Doc> *out)
{
    std::string text;
    if (!readFile(path, &text)) {
        std::fprintf(stderr, "obs_report: cannot read %s\n",
                     path.c_str());
        return false;
    }
    // A post-mortem artifact is a single (possibly multi-line-free)
    // object; try whole-file first, then fall back to JSONL.
    JsonValue whole;
    if (jsonParse(text, &whole) && whole.isObject()) {
        out->push_back(Doc{std::move(whole), text, 0});
        return true;
    }
    size_t pos = 0;
    int lineNo = 0;
    while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        ++lineNo;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        JsonValue v;
        std::string err;
        if (!jsonParse(line, &v, &err) || !v.isObject()) {
            std::fprintf(stderr, "obs_report: %s:%d: bad JSON: %s\n",
                         path.c_str(), lineNo, err.c_str());
            return false;
        }
        out->push_back(Doc{std::move(v), std::move(line), lineNo});
    }
    if (out->empty()) {
        std::fprintf(stderr, "obs_report: %s: no documents\n",
                     path.c_str());
        return false;
    }
    return true;
}

std::string
schemaOf(const JsonValue &doc)
{
    const JsonValue *s = doc.get("schema");
    return s && s->isString() ? s->string : "";
}

double
numberAt(const JsonValue &doc, const char *key, double def = 0.0)
{
    const JsonValue *v = doc.get(key);
    return v && v->isNumber() ? v->number : def;
}

std::string
stringAt(const JsonValue &doc, const char *key)
{
    const JsonValue *v = doc.get(key);
    return v && v->isString() ? v->string : "";
}

// ---------------------------------------------------------------- check

/**
 * Validate one document against its declared schema. Only structure
 * this repo's writers guarantee is required; extra keys are ignored so
 * the check survives additive schema growth.
 */
bool
checkDoc(const std::string &path, const Doc &d, std::string *schema)
{
    auto fail = [&](const char *what) {
        std::fprintf(stderr, "obs_report: %s:%d: %s\n", path.c_str(),
                     d.line, what);
        return false;
    };
    *schema = schemaOf(d.value);
    if (*schema == "edgeadapt.telemetry.v1") {
        if (!d.value.get("seq") || !d.value.get("t_ns"))
            return fail("telemetry line missing seq/t_ns");
        const JsonValue *g = d.value.get("gauges");
        const JsonValue *c = d.value.get("counters");
        const JsonValue *h = d.value.get("histograms");
        if (!g || !g->isObject() || !c || !c->isObject() || !h ||
            !h->isObject())
            return fail("telemetry line missing metric sections");
        const JsonValue *m = d.value.get("memory");
        if (!m || !m->isObject() || !m->get("live_bytes"))
            return fail("telemetry line missing memory section");
        // The energy section is additive (older streams lack it), but
        // when present it must carry the backend and running total.
        if (const JsonValue *en = d.value.get("energy")) {
            if (!en->isObject() || !en->get("backend") ||
                !en->get("total_j"))
                return fail("telemetry energy section malformed");
        }
        return true;
    }
    if (*schema == "postmortem.v1") {
        if (stringAt(d.value, "reason").empty())
            return fail("post-mortem missing reason");
        const JsonValue *env = d.value.get("env");
        if (!env || !env->isObject() || !env->get("nproc"))
            return fail("post-mortem missing env provenance");
        const JsonValue *mem = d.value.get("memory");
        if (!mem || !mem->isObject() || !mem->get("live_bytes"))
            return fail("post-mortem missing memory section");
        const JsonValue *ev = d.value.get("events");
        if (!ev || !ev->isArray())
            return fail("post-mortem missing events array");
        for (const JsonValue &e : ev->array) {
            if (!e.isObject() || !e.get("t_ns") || !e.get("name"))
                return fail("post-mortem event missing t_ns/name");
        }
        const JsonValue *met = d.value.get("metrics");
        if (!met || !met->isObject())
            return fail("post-mortem missing metrics section");
        if (const JsonValue *en = d.value.get("energy")) {
            if (!en->isObject() || !en->get("backend") ||
                !en->get("total_j"))
                return fail("post-mortem energy section malformed");
        }
        return true;
    }
    return fail("unknown or missing schema");
}

int
cmdCheck(const std::vector<std::string> &files)
{
    bool ok = true;
    for (const std::string &path : files) {
        std::vector<Doc> docs;
        if (!loadDocs(path, &docs)) {
            ok = false;
            continue;
        }
        std::map<std::string, int> bySchema;
        bool fileOk = true;
        for (const Doc &d : docs) {
            std::string schema;
            if (!checkDoc(path, d, &schema))
                fileOk = false;
            else
                ++bySchema[schema];
        }
        if (fileOk) {
            std::string kinds;
            for (const auto &[s, n] : bySchema) {
                if (!kinds.empty())
                    kinds += ", ";
                kinds += s + " x" + std::to_string(n);
            }
            std::printf("ok: %s (%s)\n", path.c_str(), kinds.c_str());
        }
        ok = ok && fileOk;
    }
    return ok ? 0 : 1;
}

// ---------------------------------------------------------------- print

void
printTelemetryLine(const Doc &d)
{
    const JsonValue &v = d.value;
    std::printf("  #%-4lld t=%.3fs %-16s", (long long)numberAt(v, "seq"),
                numberAt(v, "t_ns") * 1e-9,
                stringAt(v, "label").c_str());
    if (const JsonValue *mem = v.get("memory")) {
        std::printf(" live=%.1fKiB hw=%.1fKiB",
                    numberAt(*mem, "live_bytes") / 1024.0,
                    numberAt(*mem, "high_water_bytes") / 1024.0);
    }
    if (const JsonValue *en = v.get("energy")) {
        const JsonValue *metered = en->get("metered");
        if (metered && metered->isBool() && metered->boolean) {
            std::printf(" e=%.3fJ(+%.3f) %.2fW",
                        numberAt(*en, "total_j"),
                        numberAt(*en, "delta_j"),
                        numberAt(*en, "avg_w"));
        }
    }
    if (const JsonValue *g = v.get("gauges")) {
        for (const char *k : {"adapt.entropy", "adapt.confidence",
                              "adapt.bn_drift"}) {
            if (const JsonValue *gv = g->get(k)) {
                if (gv->isNumber())
                    std::printf(" %s=%.4f", k, gv->number);
            }
        }
    }
    std::printf("\n");
}

void
printPostmortem(const Doc &d)
{
    const JsonValue &v = d.value;
    std::printf("  reason:  %s\n", stringAt(v, "reason").c_str());
    std::string where = stringAt(v, "where");
    if (!where.empty())
        std::printf("  where:   %s\n", where.c_str());
    std::string msg = stringAt(v, "message");
    if (!msg.empty())
        std::printf("  message: %s\n", msg.c_str());
    if (numberAt(v, "signal") != 0.0) {
        std::printf("  signal:  %d (%s)\n", (int)numberAt(v, "signal"),
                    stringAt(v, "signal_name").c_str());
    }
    if (const JsonValue *env = v.get("env")) {
        std::printf("  env:     nproc=%d threads=%d sanitizer=%s "
                    "git=%.12s\n",
                    (int)numberAt(*env, "nproc"),
                    (int)numberAt(*env, "threads"),
                    stringAt(*env, "sanitizer").c_str(),
                    stringAt(*env, "git_sha").c_str());
    }
    if (const JsonValue *mem = v.get("memory")) {
        std::printf("  memory:  live=%.1fKiB high-water=%.1fKiB "
                    "allocs=%lld\n",
                    numberAt(*mem, "live_bytes") / 1024.0,
                    numberAt(*mem, "high_water_bytes") / 1024.0,
                    (long long)numberAt(*mem, "allocs"));
    }
    if (const JsonValue *en = v.get("energy")) {
        std::printf("  energy:  backend=%s total=%.3fJ "
                    "cycles=%lld instructions=%lld\n",
                    stringAt(*en, "backend").c_str(),
                    numberAt(*en, "total_j"),
                    (long long)numberAt(*en, "cycles"),
                    (long long)numberAt(*en, "instructions"));
    }
    if (const JsonValue *ev = v.get("events")) {
        std::printf("  last %zu flight-recorder events "
                    "(%lld dropped):\n",
                    ev->array.size(),
                    (long long)numberAt(v, "dropped_events"));
        for (const JsonValue &e : ev->array) {
            std::printf("    %12.6fs tid=%-3d %-8s %-24s %g\n",
                        numberAt(e, "t_ns") * 1e-9,
                        (int)numberAt(e, "tid"),
                        stringAt(e, "kind").c_str(),
                        stringAt(e, "name").c_str(),
                        numberAt(e, "value"));
        }
    }
}

int
cmdPrint(const std::vector<std::string> &files)
{
    for (const std::string &path : files) {
        std::vector<Doc> docs;
        if (!loadDocs(path, &docs))
            return 1;
        std::printf("== %s ==\n", path.c_str());
        for (const Doc &d : docs) {
            std::string schema = schemaOf(d.value);
            if (schema == "edgeadapt.telemetry.v1") {
                printTelemetryLine(d);
            } else if (schema == "postmortem.v1") {
                printPostmortem(d);
            } else {
                std::fprintf(stderr,
                             "obs_report: %s:%d: unknown schema "
                             "\"%s\"\n",
                             path.c_str(), d.line, schema.c_str());
                return 1;
            }
        }
    }
    return 0;
}

// ---------------------------------------------------------------- merge

int
cmdMerge(const std::vector<std::string> &files)
{
    std::vector<Doc> all;
    for (const std::string &path : files) {
        std::vector<Doc> docs;
        if (!loadDocs(path, &docs))
            return 1;
        for (Doc &d : docs) {
            if (schemaOf(d.value) != "edgeadapt.telemetry.v1") {
                std::fprintf(stderr,
                             "obs_report: --merge accepts telemetry "
                             "streams only (%s:%d)\n",
                             path.c_str(), d.line);
                return 1;
            }
            all.push_back(std::move(d));
        }
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const Doc &a, const Doc &b) {
                         return numberAt(a.value, "t_ns") <
                                numberAt(b.value, "t_ns");
                     });
    for (const Doc &d : all)
        std::printf("%s\n", d.raw.c_str());
    return 0;
}

// ----------------------------------------------------------------- diff

/** Flatten the comparable numbers of one artifact into name -> value. */
std::map<std::string, double>
flatMetrics(const JsonValue &doc)
{
    std::map<std::string, double> out;
    if (const JsonValue *g = doc.get("gauges")) {
        for (const auto &[k, v] : g->object) {
            if (v.isNumber())
                out["gauge " + k] = v.number;
        }
    }
    if (const JsonValue *c = doc.get("counters")) {
        for (const auto &[k, v] : c->object) {
            // Telemetry counters are {total, delta}; post-mortem
            // counters are bare numbers.
            if (v.isNumber())
                out["counter " + k] = v.number;
            else if (const JsonValue *t = v.get("total"))
                out["counter " + k] = t->number;
        }
    }
    if (const JsonValue *m = doc.get("metrics")) {
        // postmortem.v1 nests its registry snapshot under "metrics".
        for (const char *sec : {"counters", "gauges"}) {
            if (const JsonValue *s = m->get(sec)) {
                for (const auto &[k, v] : s->object) {
                    if (v.isNumber())
                        out[std::string(sec) + " " + k] = v.number;
                }
            }
        }
    }
    if (const JsonValue *mem = doc.get("memory")) {
        out["memory live_bytes"] = numberAt(*mem, "live_bytes");
        out["memory high_water_bytes"] =
            numberAt(*mem, "high_water_bytes");
    }
    if (const JsonValue *en = doc.get("energy")) {
        out["energy total_j"] = numberAt(*en, "total_j");
        out["energy cycles"] = numberAt(*en, "cycles");
        out["energy instructions"] = numberAt(*en, "instructions");
    }
    return out;
}

int
cmdDiff(const std::string &pathA, const std::string &pathB)
{
    std::vector<Doc> a, b;
    if (!loadDocs(pathA, &a) || !loadDocs(pathB, &b))
        return 1;
    // Diff the *final* state of each artifact (last telemetry line;
    // a post-mortem file has exactly one document).
    const JsonValue &va = a.back().value;
    const JsonValue &vb = b.back().value;
    auto ma = flatMetrics(va);
    auto mb = flatMetrics(vb);
    std::printf("%-40s %16s %16s %12s\n", "metric", pathA.c_str(),
                pathB.c_str(), "delta");
    for (const auto &[name, x] : ma) {
        auto it = mb.find(name);
        if (it == mb.end()) {
            std::printf("%-40s %16g %16s %12s\n", name.c_str(), x,
                        "-", "-");
            continue;
        }
        std::printf("%-40s %16g %16g %+12g\n", name.c_str(), x,
                    it->second, it->second - x);
    }
    for (const auto &[name, y] : mb) {
        if (!ma.count(name))
            std::printf("%-40s %16s %16g %12s\n", name.c_str(), "-", y,
                        "-");
    }
    return 0;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: obs_report FILE...\n"
                 "       obs_report --check FILE...\n"
                 "       obs_report --merge FILE...\n"
                 "       obs_report --diff FILE_A FILE_B\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        return usage();
    if (args[0] == "--check") {
        args.erase(args.begin());
        return args.empty() ? usage() : cmdCheck(args);
    }
    if (args[0] == "--merge") {
        args.erase(args.begin());
        return args.empty() ? usage() : cmdMerge(args);
    }
    if (args[0] == "--diff") {
        return args.size() == 3 ? cmdDiff(args[1], args[2]) : usage();
    }
    for (const std::string &a : args) {
        if (a.rfind("--", 0) == 0)
            return usage();
    }
    return cmdPrint(args);
}
