/**
 * @file
 * Print the active SIMD dispatch variant and exit.
 *
 * Usage:
 *   simd_probe          # name of the variant forward would use now
 *   simd_probe --best   # best CPUID-probed variant, ignoring
 *                       # EDGEADAPT_SIMD
 *
 * Lets shell drivers (tools/check.sh simd, tools/bench_report.sh)
 * discover what the dispatch layer resolved to: the probe result is a
 * runtime CPUID decision the shell cannot reproduce portably.
 */

#include <cstdio>
#include <cstring>

#include "tensor/simd/dispatch.hh"

int
main(int argc, char **argv)
{
    bool best = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--best") == 0) {
            best = true;
        } else {
            std::fprintf(stderr, "usage: simd_probe [--best]\n");
            return 2;
        }
    }
    using namespace edgeadapt::simd;
    const char *name =
        best ? variantName(probeBestVariant()) : activeDispatch().name;
    std::printf("%s\n", name);
    return 0;
}
